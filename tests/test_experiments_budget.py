"""Tests for the budget-feasibility experiment and remaining gaps."""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation.runner import StudyResult
from repro.experiments.budget_analysis import completion_probability, run_budget_analysis
from repro.experiments.config import ExperimentSettings


def _study(costs):
    costs = np.asarray(costs, dtype=float)
    n = costs.size
    return StudyResult(
        label="x",
        triples=np.full(n, 100),
        cost_hours=costs,
        estimates=np.full(n, 0.9),
        entities=np.full(n, 50),
        converged=np.ones(n, dtype=bool),
    )


class TestCompletionProbability:
    def test_boundaries(self):
        study = _study([1.0, 2.0, 3.0, 4.0])
        assert completion_probability(study, 0.5) == 0.0
        assert completion_probability(study, 4.0) == 1.0
        assert completion_probability(study, 2.5) == 0.5

    def test_monotone_in_budget(self):
        study = _study(np.linspace(0.5, 5.0, 50))
        probs = [completion_probability(study, b) for b in (1.0, 2.0, 3.0, 4.0)]
        assert probs == sorted(probs)


class TestRunBudgetAnalysis:
    @pytest.fixture(scope="class")
    def report(self):
        return run_budget_analysis(ExperimentSettings(repetitions=25))

    def test_columns(self, report):
        assert report.headers == ("budget_hours", "Wald", "Wilson", "aHPD")
        assert len(report.rows) >= 3

    def test_probabilities_monotone(self, report):
        for method in ("Wald", "Wilson", "aHPD"):
            values = [float(str(row[method]).rstrip("%")) for row in report.rows]
            assert values == sorted(values)

    def test_ahpd_dominates_wilson(self, report):
        # At every budget, aHPD completes at least as often (paired
        # seeds + YAGO at alpha=0.01, the Figure 4 peak).
        for row in report.rows:
            ahpd = float(str(row["aHPD"]).rstrip("%"))
            wilson = float(str(row["Wilson"]).rstrip("%"))
            assert ahpd >= wilson - 1e-9

    def test_gap_note_present(self, report):
        assert any("budget-exhaustion" in note for note in report.notes)

    def test_registered_in_cli(self):
        from repro.experiments import EXPERIMENTS

        assert "budget" in EXPERIMENTS


class TestFigure2RightSkew:
    def test_waste_ratio_right_skewed_posterior(self):
        # Inaccurate-KG outcomes produce right-skewed posteriors; the
        # mirrored branch of the waste-ratio computation must agree with
        # the left-skewed one by symmetry.
        from repro.experiments.figure2 import et_waste_ratio
        from repro.intervals.posterior import BetaPosterior
        from repro.intervals.priors import JEFFREYS

        left = et_waste_ratio(BetaPosterior.from_counts(JEFFREYS, 27, 30), 0.05)
        right = et_waste_ratio(BetaPosterior.from_counts(JEFFREYS, 3, 30), 0.05)
        assert right == pytest.approx(left, abs=1e-6)


class TestMAblationSmoke:
    def test_rows_and_note(self):
        from repro.experiments.ablation_m import run_m_ablation

        report = run_m_ablation(
            ExperimentSettings(repetitions=3), dataset="YAGO", ms=(1, 3)
        )
        assert [row["m"] for row in report.rows] == [1, 3]
        assert any("cost-optimal" in note for note in report.notes)
