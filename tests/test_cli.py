"""Unit tests for the experiments CLI."""

from __future__ import annotations

import pytest

from repro.experiments.__main__ import main
from repro.runtime import reset_defaults


@pytest.fixture(autouse=True)
def _fresh_runtime_defaults():
    # main() installs its RunContext as the process-wide default via
    # configure(context=...); don't leak it into other tests.
    yield
    reset_defaults()


class TestCLI:
    def test_no_args_lists_experiments(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "table3" in out
        assert "figure4" in out

    def test_unknown_experiment_errors(self, capsys):
        assert main(["not-an-experiment"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiments" in err

    def test_runs_fast_experiment(self, capsys):
        assert main(["figure2", "--reps", "3"]) == 0
        out = capsys.readouterr().out
        assert "figure2" in out
        assert "completed in" in out

    def test_solver_flag(self, capsys):
        assert main(["figure2", "--reps", "3", "--solver", "slsqp"]) == 0

    def test_multiple_experiments(self, capsys):
        assert main(["table1", "figure2", "--reps", "3"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "figure2" in out
