"""Unit tests for Beta priors and the conjugate posterior."""

from __future__ import annotations

import pytest

from repro.estimators.base import Evidence
from repro.exceptions import PriorError, ValidationError
from repro.intervals.posterior import BetaPosterior, PosteriorShape
from repro.intervals.priors import (
    JEFFREYS,
    KERMAN,
    UNIFORM,
    UNINFORMATIVE_PRIORS,
    BetaPrior,
)


class TestPriors:
    def test_paper_trio(self):
        assert KERMAN.a == KERMAN.b == pytest.approx(1 / 3)
        assert JEFFREYS.a == JEFFREYS.b == 0.5
        assert UNIFORM.a == UNIFORM.b == 1.0
        assert UNINFORMATIVE_PRIORS == (KERMAN, JEFFREYS, UNIFORM)

    def test_uninformative_flag(self):
        assert KERMAN.is_uninformative
        assert JEFFREYS.is_uninformative
        assert UNIFORM.is_uninformative
        assert not BetaPrior(80, 20).is_uninformative
        assert not BetaPrior(2, 2).is_uninformative  # a == b but > 1

    def test_from_accuracy_example2(self):
        # Example 2: accuracy 0.80 with strength 100 -> Beta(80, 20).
        prior = BetaPrior.from_accuracy(0.80, 100)
        assert prior.a == pytest.approx(80)
        assert prior.b == pytest.approx(20)
        assert prior.mean == pytest.approx(0.80)
        assert prior.strength == pytest.approx(100)

    def test_from_accuracy_rejects_degenerate(self):
        with pytest.raises(PriorError):
            BetaPrior.from_accuracy(0.0, 100)
        with pytest.raises(PriorError):
            BetaPrior.from_accuracy(1.0, 100)

    def test_rejects_nonpositive_shapes(self):
        with pytest.raises(PriorError):
            BetaPrior(0.0, 1.0)
        with pytest.raises(PriorError):
            BetaPrior(1.0, -2.0)

    def test_default_name(self):
        assert BetaPrior(2, 3).name == "Beta(2,3)"

    def test_str(self):
        assert "Kerman" in str(KERMAN)


class TestPosteriorUpdate:
    def test_conjugate_arithmetic(self):
        post = BetaPosterior.from_counts(JEFFREYS, tau=27, n=30)
        assert post.a == pytest.approx(27.5)
        assert post.b == pytest.approx(3.5)

    def test_from_evidence_uses_effective_counts(self):
        ev = Evidence(
            mu_hat=0.9, variance=0.001, n_effective=40.0, tau_effective=36.0, n_annotated=60
        )
        post = BetaPosterior.from_evidence(UNIFORM, ev)
        assert post.a == pytest.approx(37.0)
        assert post.b == pytest.approx(5.0)

    def test_no_data_returns_prior(self):
        post = BetaPosterior.from_counts(UNIFORM, tau=0, n=0)
        assert post.a == UNIFORM.a
        assert post.b == UNIFORM.b

    def test_rejects_inconsistent_counts(self):
        with pytest.raises(ValidationError):
            BetaPosterior.from_counts(UNIFORM, tau=5, n=3)
        with pytest.raises(ValidationError):
            BetaPosterior.from_counts(UNIFORM, tau=-1, n=3)


class TestPosteriorShape:
    def test_interior(self):
        assert (
            BetaPosterior.from_counts(JEFFREYS, 15, 30).shape
            is PosteriorShape.INTERIOR
        )

    def test_increasing_limiting_case(self):
        # tau = n under an uninformative prior (Eq. 10 regime).
        assert (
            BetaPosterior.from_counts(JEFFREYS, 30, 30).shape
            is PosteriorShape.INCREASING
        )

    def test_decreasing_limiting_case(self):
        assert (
            BetaPosterior.from_counts(JEFFREYS, 0, 30).shape
            is PosteriorShape.DECREASING
        )

    def test_flat(self):
        assert BetaPosterior.from_counts(UNIFORM, 0, 0).shape is PosteriorShape.FLAT

    def test_bathtub(self):
        assert BetaPosterior.from_counts(KERMAN, 0, 0).shape is PosteriorShape.BATHTUB

    def test_informative_prior_all_correct_stays_interior(self):
        # Informative prior with b > 1: no limiting case even at tau = n.
        prior = BetaPrior(80, 20)
        assert (
            BetaPosterior.from_counts(prior, 30, 30).shape
            is PosteriorShape.INTERIOR
        )


class TestPosteriorMoments:
    def test_mean_and_mode(self):
        post = BetaPosterior.from_counts(UNIFORM, 27, 30)
        assert post.mean == pytest.approx(28 / 32)
        assert post.mode == pytest.approx(27 / 30)

    def test_symmetry(self):
        post = BetaPosterior.from_counts(UNIFORM, 15, 30)
        assert post.is_symmetric
        assert post.skewness == pytest.approx(0.0)

    def test_skewness_negative_for_accurate_kg(self):
        post = BetaPosterior.from_counts(JEFFREYS, 27, 30)
        assert post.skewness < 0

    def test_distribution_functions_consistent(self):
        post = BetaPosterior.from_counts(JEFFREYS, 20, 30)
        x = post.ppf(0.3)
        assert post.cdf(x) == pytest.approx(0.3, abs=1e-9)
        assert post.interval_mass(0.0, 1.0) == pytest.approx(1.0)

    def test_more_data_sharpens_posterior(self):
        small = BetaPosterior.from_counts(JEFFREYS, 9, 10)
        large = BetaPosterior.from_counts(JEFFREYS, 90, 100)
        assert large.std < small.std
