"""Unit tests for ET and HPD credible intervals (paper Sec. 4.2-4.3)."""

from __future__ import annotations

import pytest

from repro.estimators.base import Evidence
from repro.exceptions import IntervalError, ValidationError
from repro.intervals.et import ETCredibleInterval, et_bounds
from repro.intervals.hpd import HPD_SOLVERS, HPDCredibleInterval, hpd_bounds
from repro.intervals.posterior import BetaPosterior
from repro.intervals.priors import JEFFREYS, KERMAN, UNIFORM, BetaPrior


class TestETBounds:
    def test_equal_tail_mass(self):
        post = BetaPosterior.from_counts(JEFFREYS, 25, 30)
        lower, upper = et_bounds(post, 0.05)
        assert post.cdf(lower) == pytest.approx(0.025, abs=1e-9)
        assert post.cdf(upper) == pytest.approx(0.975, abs=1e-9)

    def test_interval_mass_is_nominal(self):
        post = BetaPosterior.from_counts(KERMAN, 10, 40)
        lower, upper = et_bounds(post, 0.10)
        assert post.interval_mass(lower, upper) == pytest.approx(0.90, abs=1e-9)

    def test_method_object(self):
        ev = Evidence.from_counts(25, 30)
        interval = ETCredibleInterval(prior=UNIFORM).compute(ev, 0.05)
        assert interval.method == "ET[Uniform]"
        assert 0.0 <= interval.lower < interval.upper <= 1.0


class TestHPDStandardCase:
    @pytest.mark.parametrize("solver", sorted(HPD_SOLVERS))
    def test_mass_constraint(self, solver):
        post = BetaPosterior.from_counts(JEFFREYS, 27, 30)
        lower, upper = hpd_bounds(post, 0.05, solver=solver)
        assert post.interval_mass(lower, upper) == pytest.approx(0.95, abs=1e-6)

    @pytest.mark.parametrize("solver", sorted(HPD_SOLVERS))
    def test_equal_density_at_bounds(self, solver):
        post = BetaPosterior.from_counts(JEFFREYS, 27, 30)
        lower, upper = hpd_bounds(post, 0.05, solver=solver)
        assert float(post.pdf(lower)) == pytest.approx(float(post.pdf(upper)), rel=1e-4)

    def test_solvers_agree(self):
        post = BetaPosterior.from_counts(KERMAN, 22, 30)
        reference = hpd_bounds(post, 0.05, solver="slsqp")
        for solver in ("newton", "scalar"):
            bounds = hpd_bounds(post, 0.05, solver=solver)
            assert bounds[0] == pytest.approx(reference[0], abs=1e-6)
            assert bounds[1] == pytest.approx(reference[1], abs=1e-6)

    def test_theorem1_shortest(self):
        # Theorem 1: HPD is never wider than ET (the canonical
        # alternative satisfying the same mass constraint).
        for tau in (1, 5, 15, 27, 29):
            post = BetaPosterior.from_counts(JEFFREYS, tau, 30)
            l_et, u_et = et_bounds(post, 0.05)
            l_h, u_h = hpd_bounds(post, 0.05)
            assert (u_h - l_h) <= (u_et - l_et) + 1e-9

    def test_theorem3_symmetric_equivalence(self):
        # Theorem 3: symmetric posterior -> HPD == ET.
        post = BetaPosterior.from_counts(UNIFORM, 15, 30)
        assert post.is_symmetric
        l_et, u_et = et_bounds(post, 0.05)
        l_h, u_h = hpd_bounds(post, 0.05)
        assert l_h == pytest.approx(l_et, abs=1e-7)
        assert u_h == pytest.approx(u_et, abs=1e-7)

    def test_contains_mode(self):
        post = BetaPosterior.from_counts(JEFFREYS, 27, 30)
        lower, upper = hpd_bounds(post, 0.05)
        assert lower < post.mode < upper

    def test_skewed_hpd_shifts_toward_mode(self):
        # Left-skewed posterior: HPD sits right of ET (paper Fig. 2).
        post = BetaPosterior.from_counts(JEFFREYS, 27, 30)
        l_et, u_et = et_bounds(post, 0.05)
        l_h, u_h = hpd_bounds(post, 0.05)
        assert l_h > l_et
        assert u_h > u_et


class TestHPDLimitingCases:
    def test_all_correct_eq10(self):
        # tau = n, uninformative prior: l = qBeta(alpha), u = 1.
        post = BetaPosterior.from_counts(JEFFREYS, 30, 30)
        lower, upper = hpd_bounds(post, 0.05)
        assert upper == 1.0
        assert post.cdf(lower) == pytest.approx(0.05, abs=1e-9)

    def test_all_incorrect_eq11(self):
        post = BetaPosterior.from_counts(JEFFREYS, 0, 30)
        lower, upper = hpd_bounds(post, 0.05)
        assert lower == 0.0
        assert post.cdf(upper) == pytest.approx(0.95, abs=1e-9)

    def test_corollary1_shortest(self):
        # The limiting-case interval is shorter than the ET alternative.
        post = BetaPosterior.from_counts(JEFFREYS, 30, 30)
        l_et, u_et = et_bounds(post, 0.05)
        l_h, u_h = hpd_bounds(post, 0.05)
        assert (u_h - l_h) <= (u_et - l_et) + 1e-12

    def test_flat_posterior_central(self):
        post = BetaPosterior.from_counts(UNIFORM, 0, 0)
        lower, upper = hpd_bounds(post, 0.05)
        assert lower == pytest.approx(0.025)
        assert upper == pytest.approx(0.975)

    def test_bathtub_raises(self):
        post = BetaPosterior.from_counts(KERMAN, 0, 0)
        with pytest.raises(IntervalError):
            hpd_bounds(post, 0.05)


class TestHPDMethodObject:
    def test_compute(self):
        ev = Evidence.from_counts(27, 30)
        interval = HPDCredibleInterval(prior=KERMAN).compute(ev, 0.05)
        assert interval.method == "HPD[Kerman]"
        assert 0.0 <= interval.lower < interval.upper <= 1.0

    def test_informative_prior_all_correct_is_standard_case(self):
        # Informative prior keeps an interior mode even when tau = n.
        ev = Evidence.from_counts(30, 30)
        interval = HPDCredibleInterval(prior=BetaPrior(80, 20)).compute(ev, 0.05)
        assert interval.upper < 1.0

    def test_rejects_unknown_solver(self):
        with pytest.raises(ValidationError):
            HPDCredibleInterval(solver="gradient-descent")

    def test_hpd_bounds_rejects_unknown_solver(self):
        post = BetaPosterior.from_counts(JEFFREYS, 10, 30)
        with pytest.raises(ValidationError):
            hpd_bounds(post, 0.05, solver="nope")

    def test_boundary_mode_falls_back_to_scalar(self):
        # Extreme design-effect posteriors push the mode within 1e-12 of
        # a boundary; Newton defers to the scalar solver transparently.
        post = BetaPosterior(a=1e8, b=1.000001, prior=JEFFREYS)
        lower, upper = hpd_bounds(post, 0.05, solver="newton")
        assert 0.0 < lower < upper <= 1.0
        assert post.interval_mass(lower, upper) == pytest.approx(0.95, abs=1e-6)

    def test_fractional_effective_counts(self):
        # Design-effect corrected evidence produces fractional counts.
        ev = Evidence(
            mu_hat=0.9, variance=0.002, n_effective=45.5, tau_effective=40.95, n_annotated=60
        )
        interval = HPDCredibleInterval().compute(ev, 0.05)
        assert 0.0 < interval.lower < interval.upper <= 1.0
