"""Executor tests: parallel-vs-serial determinism, caching, resume."""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np
import pytest
from hypothesis import given, settings as hyp_settings
from hypothesis import strategies as st

from repro.evaluation.coverage import coverage_profile
from repro.evaluation.runner import StudyResult
from repro.experiments.config import ExperimentSettings
from repro.intervals.wilson import WilsonInterval
from repro.runtime import (
    CellSpec,
    ParallelExecutor,
    ResultStore,
    StudyCell,
    StudyPlan,
    cache_token,
    default_executor,
    register_cell_runner,
)


def small_plan(
    seed: int = 0,
    repetitions: int = 3,
    datasets: tuple[str, ...] = ("YAGO", "NELL"),
) -> StudyPlan:
    """A small but heterogeneous grid: 2 datasets x 2 strategies x 2 methods."""
    settings = ExperimentSettings(repetitions=repetitions, seed=seed)
    cells = []
    for di, dataset in enumerate(datasets):
        for si, strategy in enumerate(("SRS", "TWCS:3")):
            for method in ("Wilson", "aHPD"):
                cells.append(
                    StudyCell(
                        key=(dataset, strategy, method),
                        label=f"{dataset}/{strategy}/{method}",
                        method=method,
                        dataset=dataset,
                        strategy=strategy,
                        seed_stream=(100 + 10 * di + si,),
                    )
                )
    return StudyPlan(settings=settings, cells=tuple(cells), name="test-grid")


def assert_studies_equal(a: StudyResult, b: StudyResult) -> None:
    assert a.label == b.label
    assert np.array_equal(a.triples, b.triples)
    assert np.array_equal(a.cost_hours, b.cost_hours)
    assert np.array_equal(a.estimates, b.estimates)
    assert np.array_equal(a.entities, b.entities)
    assert np.array_equal(a.converged, b.converged)


class TestParallelSerialDeterminism:
    def test_four_workers_bit_identical(self):
        plan = small_plan()
        serial = ParallelExecutor(workers=1).run(plan)
        parallel = ParallelExecutor(workers=4).run(plan)
        assert serial.results.keys() == parallel.results.keys()
        for key in serial.results:
            assert_studies_equal(serial.results[key], parallel.results[key])

    @given(seed=st.integers(0, 2**16), repetitions=st.integers(2, 5))
    @hyp_settings(max_examples=5, deadline=None)
    def test_property_any_seed_and_size(self, seed, repetitions):
        # Property form of the guarantee: whatever the base seed and
        # repetition count, fan-out over processes never changes a bit.
        plan = small_plan(seed=seed, repetitions=repetitions, datasets=("YAGO",))
        serial = ParallelExecutor(workers=1).run(plan)
        parallel = ParallelExecutor(workers=2).run(plan)
        for key in serial.results:
            assert_studies_equal(serial.results[key], parallel.results[key])

    def test_outcome_order_is_plan_order(self):
        plan = small_plan()
        outcome = ParallelExecutor(workers=4).run(plan)
        assert tuple(entry.cell.key for entry in outcome.cells) == tuple(
            cell.key for cell in plan.cells
        )


class TestResultStoreIntegration:
    def test_second_run_served_from_cache(self, tmp_path):
        plan = small_plan()
        executor = ParallelExecutor(workers=1, store=tmp_path / "cache")
        first = executor.run(plan)
        second = executor.run(plan)
        assert first.cache_misses == len(plan)
        assert first.cache_hits == 0
        assert second.cache_hits == len(plan)
        assert second.cache_misses == 0
        for key in first.results:
            assert_studies_equal(first.results[key], second.results[key])

    def test_resume_after_interrupt(self, tmp_path):
        # Interruption model: only a prefix of the grid completed (each
        # cell is persisted the moment it finishes, so a kill leaves
        # exactly this state).  The re-run must recompute only the
        # missing cells and agree with an uninterrupted run.
        plan = small_plan()
        store = ResultStore(tmp_path / "cache")
        interrupted = StudyPlan(
            settings=plan.settings, cells=plan.cells[:3], name="prefix"
        )
        ParallelExecutor(workers=1, store=store).run(interrupted)
        assert len(store) == 3

        resumed = ParallelExecutor(workers=2, store=store).run(plan)
        assert resumed.cache_hits == 3
        assert resumed.cache_misses == len(plan) - 3

        reference = ParallelExecutor(workers=1).run(plan)
        for key in reference.results:
            assert_studies_equal(reference.results[key], resumed.results[key])

    def test_corrupt_entry_recomputes(self, tmp_path):
        plan = small_plan()
        store = ResultStore(tmp_path / "cache")
        executor = ParallelExecutor(workers=1, store=store)
        executor.run(plan)
        token = cache_token(plan.cells[0], plan.settings)
        store._path(token).write_bytes(b"not a pickle")
        with pytest.warns(RuntimeWarning, match="unreadable cache entry"):
            outcome = executor.run(plan)
        assert outcome.cache_misses == 1
        assert outcome.cache_hits == len(plan) - 1

    @pytest.mark.parametrize(
        "corruption",
        [
            pytest.param(b"not a pickle", id="garbage"),
            pytest.param(None, id="truncated"),
            pytest.param(b"cno_such_module\nNoClass\n.", id="unimportable"),
        ],
    )
    def test_unreadable_entry_warns_with_the_path_and_heals(
        self, tmp_path, corruption
    ):
        # Every flavour of rot — garbage bytes, a truncated write from
        # a crashed foreign (pre-atomic) writer, a payload class that
        # no longer imports — is a miss that names the sick file, and
        # the recompute overwrites it with a loadable entry.
        plan = small_plan()
        store = ResultStore(tmp_path / "cache")
        executor = ParallelExecutor(workers=1, store=store)
        executor.run(plan)
        token = cache_token(plan.cells[0], plan.settings)
        path = store._path(token)
        if corruption is None:
            path.write_bytes(path.read_bytes()[:20])
        else:
            path.write_bytes(corruption)
        with pytest.warns(RuntimeWarning, match="will recompute") as captured:
            assert store.load(token) is None
        assert any(str(path) in str(w.message) for w in captured)
        with pytest.warns(RuntimeWarning):
            outcome = executor.run(plan)
        assert outcome.cache_misses == 1
        # Healed: the overwritten entry loads cleanly again.
        payload = store.load(token)
        assert payload is not None
        assert_studies_equal(
            payload["value"], outcome.results[plan.cells[0].key]
        )

    def test_missing_entry_is_a_silent_miss(self, tmp_path):
        # FileNotFoundError is the ordinary cold-cache path — it must
        # stay warning-free or every fresh run would spam stderr.
        import warnings as _warnings

        store = ResultStore(tmp_path / "cache")
        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            assert store.load("ab" + "0" * 62) is None

    def test_settings_change_misses(self, tmp_path):
        plan = small_plan(repetitions=3)
        store = ResultStore(tmp_path / "cache")
        ParallelExecutor(workers=1, store=store).run(plan)
        changed = small_plan(repetitions=4)
        outcome = ParallelExecutor(workers=1, store=store).run(changed)
        assert outcome.cache_hits == 0

    def test_store_utilities(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        assert len(store) == 0
        store.save("ab" + "0" * 62, {"value": 1})
        assert store.contains("ab" + "0" * 62)
        assert store.load("ab" + "0" * 62) == {"value": 1}
        assert store.discard("ab" + "0" * 62)
        assert not store.discard("ab" + "0" * 62)
        store.save("cd" + "0" * 62, {"value": 2})
        assert store.clear() == 1
        assert len(store) == 0


class TestStorePruning:
    """Consolidation must leave no empty-directory skeletons behind."""

    @staticmethod
    def _dirs(root):
        return sorted(
            str(path.relative_to(root))
            for path in root.rglob("*")
            if path.is_dir()
        )

    def test_discard_prunes_empty_prefix_dir(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        store.save("ab" + "0" * 62, {"value": 1})
        store.save("ab" + "1" * 62, {"value": 2})
        store.save("cd" + "0" * 62, {"value": 3})
        store.discard("ab" + "0" * 62)
        assert self._dirs(store.root) == ["ab", "cd"]  # ab still holds one
        store.discard("ab" + "1" * 62)
        assert self._dirs(store.root) == ["cd"]

    def test_discard_grouped_entry_prunes_group_chain(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        group = "ef" + "0" * 62
        store.save("ab" + "0" * 62, {"value": 1}, group=group)
        store.discard("ab" + "0" * 62, group=group)
        # shards/<prefix>/<group> all emptied and swept.
        assert self._dirs(store.root) == []

    def test_discard_many_removes_and_prunes_once(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        tokens = ["ab" + f"{i}" * 62 for i in range(3)]
        for i, token in enumerate(tokens):
            store.save(token, {"value": i})
        assert store.discard_many(tokens + ["cd" + "0" * 62]) == 3
        assert len(store) == 0
        assert self._dirs(store.root) == []

    def test_discard_group_leaves_no_skeleton(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        group = "ef" + "0" * 62
        store.save("ab" + "0" * 62, {"value": 1}, group=group)
        store.save("ab" + "1" * 62, {"value": 2}, group=group)
        assert store.discard_group(group) == 2
        assert self._dirs(store.root) == []
        assert store.discard_group(group) == 0  # idempotent

    def test_clear_sweeps_empty_directories(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        store.save("ab" + "0" * 62, {"value": 1})
        store.save("cd" + "0" * 62, {"value": 2}, group="ef" + "0" * 62)
        assert store.clear() == 2
        assert store.root.exists()
        assert self._dirs(store.root) == []

    def test_sharded_run_leaves_only_merged_entries(self, tmp_path):
        # End to end: after consolidation the store holds exactly the
        # merged cell files and their prefix dirs — no shards/ tree.
        store = ResultStore(tmp_path / "cache")
        plan = small_plan(datasets=("YAGO",))
        ParallelExecutor(workers=1, store=store, chunk_size=1).run(plan)
        assert len(store) == len(plan)
        assert not (store.root / "shards").exists()


@dataclass(frozen=True)
class SleepCell(CellSpec):
    """Test-only cell: sleeps, then returns its key (pure wall-clock)."""

    duration: float = 0.1


@register_cell_runner(SleepCell)
def _run_sleep_cell(cell: SleepCell, settings) -> tuple:
    time.sleep(cell.duration)
    return cell.key


class TestExecutionOverlap:
    def test_parallel_overlaps_cells(self):
        # Sleeping cells release the CPU, so overlap shows even on a
        # single-core machine: 6 x 0.15s serially is ~0.9s, but three
        # workers finish in a third of that (plus pool start-up).
        # Backends are pinned explicitly so the timing comparison keeps
        # measuring serial-vs-pool even under a REPRO_BACKEND CI leg.
        settings = ExperimentSettings(repetitions=1)
        cells = tuple(
            SleepCell(key=(i,), label=f"sleep-{i}", method="-", duration=0.15)
            for i in range(6)
        )
        plan = StudyPlan(settings=settings, cells=cells, name="sleep")
        t0 = time.perf_counter()
        serial = ParallelExecutor(workers=1, backend="serial").run(plan)
        serial_wall = time.perf_counter() - t0
        t0 = time.perf_counter()
        parallel = ParallelExecutor(workers=3, backend="process").run(plan)
        parallel_wall = time.perf_counter() - t0
        assert serial.results == parallel.results
        assert parallel_wall < serial_wall / 1.5

    def test_custom_cell_runner_dispatch(self):
        settings = ExperimentSettings(repetitions=1)
        cell = SleepCell(key=("x",), label="x", method="-", duration=0.0)
        plan = StudyPlan(settings=settings, cells=(cell,), name="one")
        outcome = ParallelExecutor(workers=1).run(plan)
        assert outcome.results[("x",)] == ("x",)


class TestConfiguration:
    def test_env_workers(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert default_executor().workers == 3
        monkeypatch.delenv("REPRO_WORKERS")
        assert default_executor().workers == 1

    def test_env_cache_dir(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c"))
        executor = default_executor()
        assert executor.store is not None
        assert executor.store.root == tmp_path / "c"

    def test_invalid_workers(self):
        from repro.exceptions import ValidationError

        with pytest.raises(ValidationError):
            ParallelExecutor(workers=0)

    def test_progress_callback(self):
        plan = small_plan(datasets=("YAGO",))
        seen = []
        executor = ParallelExecutor(
            workers=1, progress=lambda done, total, result: seen.append((done, total, result.cached))
        )
        executor.run(plan)
        assert [done for done, _, _ in seen] == list(range(1, len(plan) + 1))
        assert all(total == len(plan) for _, total, _ in seen)

    def test_summary_mentions_cells_and_cache(self, tmp_path):
        plan = small_plan(datasets=("YAGO",))
        executor = ParallelExecutor(workers=1, store=tmp_path / "cache")
        executor.run(plan)
        summary = executor.run(plan).summary()
        assert "4 cells" in summary
        assert "4 cached" in summary


class TestCoverageProfileRouting:
    def test_executor_path_matches_serial(self):
        method = WilsonInterval()
        serial = coverage_profile(
            method, mus=[0.5, 0.9], n=30, repetitions=200, seed=11
        )
        routed = coverage_profile(
            method,
            mus=[0.5, 0.9],
            n=30,
            repetitions=200,
            seed=11,
            executor=ParallelExecutor(workers=2),
        )
        assert [r.coverage for r in routed] == [r.coverage for r in serial]
        assert [r.mean_width for r in routed] == [r.mean_width for r in serial]
