"""Run telemetry: the event bus, journal sink, metrics, and CLI digests.

The contract under test is two-sided.  *Completeness*: a traced run's
journal narrates every executed unit queued → submitted → finished
(worker-side spans included when the work crossed a spool), and the
in-memory aggregate can be reproduced from the journal alone.
*Non-interference*: tracing on or off changes no result bytes, cache
entries, or tokens — telemetry is strictly observational.
"""

from __future__ import annotations

import json
import os
import pickle
import subprocess
import sys
import threading
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings as hyp_settings
from hypothesis import strategies as st

from repro.cli import main
from repro.exceptions import ValidationError
from repro.experiments.config import ExperimentSettings
from repro.runtime import (
    CellSpec,
    ChaosBackend,
    EVENT_TYPES,
    JsonlTraceSink,
    MetricsAggregate,
    ParallelExecutor,
    ResultStore,
    RunTelemetry,
    SpoolBackend,
    StudyCell,
    StudyPlan,
    TelemetryEvent,
    read_journal,
    register_cell_runner,
    render_summary,
    replay_metrics,
    run_worker,
    summarize_journal,
)
from repro.runtime.backends.spool import _claim
from repro.runtime.telemetry import resolve_trace_file


def study_cell(method: str = "Wilson") -> StudyCell:
    return StudyCell(
        key=("NELL", "SRS", method),
        label=f"NELL/SRS/{method}",
        method=method,
        dataset="NELL",
        strategy="SRS",
        seed_stream=(5,),
    )


def small_plan(repetitions: int = 3, seed: int = 0) -> StudyPlan:
    settings = ExperimentSettings(repetitions=repetitions, seed=seed)
    return StudyPlan(
        settings=settings,
        cells=(study_cell("Wilson"), study_cell("aHPD")),
        name="telemetry",
    )


def assert_studies_equal(a, b) -> None:
    assert np.array_equal(a.triples, b.triples)
    assert np.array_equal(a.estimates, b.estimates)
    assert np.array_equal(a.converged, b.converged)


def journal_events(path, event=None) -> list[dict]:
    records = read_journal(path)
    if event is None:
        return records
    return [record for record in records if record["event"] == event]


# ----------------------------------------------------------------------
# The bus itself
# ----------------------------------------------------------------------


class TestRunTelemetry:
    def test_emit_delivers_events_with_fields_and_payload(self):
        bus = RunTelemetry()
        seen: list[TelemetryEvent] = []
        bus.subscribe(seen.append)
        payload = object()
        bus.emit("cache_hit", payload=payload, label="a", kind="StudyCell")
        assert len(seen) == 1
        event = seen[0]
        assert event.event == "cache_hit"
        assert event.run_id == bus.run_id
        assert event.fields == {"label": "a", "kind": "StudyCell"}
        assert event.payload is payload
        assert event.t >= 0.0

    def test_unknown_event_type_is_rejected(self):
        bus = RunTelemetry()
        with pytest.raises(ValidationError, match="unknown telemetry event"):
            bus.emit("not_a_real_event")

    def test_every_declared_event_type_is_emittable(self):
        bus = RunTelemetry()
        seen = []
        bus.subscribe(seen.append)
        for name in sorted(EVENT_TYPES):
            bus.emit(name)
        assert [event.event for event in seen] == sorted(EVENT_TYPES)

    def test_close_closes_subscribers_that_support_it(self, tmp_path):
        sink = JsonlTraceSink(tmp_path / "j.jsonl")
        bus = RunTelemetry()
        bus.subscribe(sink)
        bus.emit("run_start", plan="p", cells=0, workers=1, schema=1)
        bus.close()
        records = read_journal(tmp_path / "j.jsonl")
        assert [record["event"] for record in records] == ["run_start"]

    def test_resolve_trace_file_reads_env(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_TRACE_FILE", raising=False)
        assert resolve_trace_file(None) is None
        monkeypatch.setenv("REPRO_TRACE_FILE", str(tmp_path / "env.jsonl"))
        assert resolve_trace_file(None) == tmp_path / "env.jsonl"
        # An explicit argument beats the environment.
        assert resolve_trace_file(tmp_path / "arg.jsonl") == tmp_path / "arg.jsonl"


# ----------------------------------------------------------------------
# Journal completeness and strict parsing
# ----------------------------------------------------------------------


class TestJournal:
    def test_every_executed_unit_has_a_complete_span(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        plan = small_plan()
        ParallelExecutor(workers=1, chunk_size=2, trace=journal).run(plan)
        records = read_journal(journal)
        events = [record["event"] for record in records]
        assert events[0] == "run_start"
        assert events[-1] == "run_finish"
        assert records[-1]["status"] == "ok"
        finished = {
            record["token"] for record in records if record["event"] == "unit_finished"
        }
        assert finished  # sharded: 2 cells x 2 shards
        for token in finished:
            queued = [r for r in records if r["event"] == "unit_queued" and r["token"] == token]
            submitted = [r for r in records if r["event"] == "unit_submitted" and r["token"] == token]
            done = [r for r in records if r["event"] == "unit_finished" and r["token"] == token]
            assert len(queued) == 1
            assert len(submitted) >= 1
            assert len(done) == 1
            # Monotonic ordering within the span.
            assert queued[0]["t"] <= submitted[0]["t"] <= done[0]["t"]

    def test_cached_rerun_journals_cache_hits_not_units(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        store = ResultStore(tmp_path / "cache")
        plan = small_plan()
        ParallelExecutor(workers=1, store=store).run(plan)
        ParallelExecutor(workers=1, store=store, trace=journal).run(plan)
        records = read_journal(journal)
        hits = [r for r in records if r["event"] == "cache_hit"]
        assert len(hits) == len(plan)
        assert not [r for r in records if r["event"] == "unit_submitted"]
        scan = [r for r in records if r["event"] == "scan_finish"]
        assert scan[0]["pending"] == 0 and scan[0]["cached"] == len(plan)

    def test_trace_file_accumulates_runs_by_run_id(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        plan = small_plan()
        ParallelExecutor(workers=1, trace=journal).run(plan)
        ParallelExecutor(workers=1, trace=journal).run(plan)
        run_ids = {record["run_id"] for record in read_journal(journal)}
        assert len(run_ids) == 2

    def test_env_var_turns_tracing_on(self, tmp_path, monkeypatch):
        journal = tmp_path / "env.jsonl"
        monkeypatch.setenv("REPRO_TRACE_FILE", str(journal))
        ParallelExecutor(workers=1).run(small_plan())
        assert journal_events(journal, "run_finish")

    def test_read_journal_rejects_bad_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n", encoding="utf-8")
        with pytest.raises(ValidationError, match=r"bad\.jsonl:1:"):
            read_journal(path)
        path.write_text('["array", "not", "object"]\n', encoding="utf-8")
        with pytest.raises(ValidationError, match="must be JSON objects"):
            read_journal(path)
        path.write_text(
            '{"event": "made_up", "run_id": "x", "t": 0.0}\n', encoding="utf-8"
        )
        with pytest.raises(ValidationError, match="made_up"):
            read_journal(path)
        path.write_text('{"run_id": "x", "t": 0.0}\n', encoding="utf-8")
        with pytest.raises(ValidationError, match=r"bad\.jsonl:1:"):
            read_journal(path)


# ----------------------------------------------------------------------
# Metrics: live aggregate vs replay from the journal alone
# ----------------------------------------------------------------------


class TestMetrics:
    def test_outcome_always_carries_a_metrics_aggregate(self):
        outcome = ParallelExecutor(workers=1).run(small_plan())
        assert isinstance(outcome.metrics, MetricsAggregate)
        assert outcome.metrics.cache_misses == len(outcome.plan)
        assert outcome.metrics.status == "ok"
        snapshot = outcome.metrics.as_dict()
        json.dumps(snapshot)  # JSON-ready, no numpy leakage
        assert snapshot["schema_version"] == 1

    def test_replay_reproduces_the_live_aggregate(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        plan = small_plan()
        outcome = ParallelExecutor(workers=1, chunk_size=2, trace=journal).run(plan)
        replayed = replay_metrics(read_journal(journal))
        live = outcome.metrics.as_dict()
        again = replayed.as_dict()
        assert again["events"] == live["events"]
        assert again["cache"] == live["cache"]
        assert again["faults"] == live["faults"]
        assert again["by_kind"] == live["by_kind"]
        assert again["by_backend"] == live["by_backend"]
        assert again["timing"] == live["timing"]

    def test_summarize_journal_reports_runs_and_aggregate(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        outcome = ParallelExecutor(workers=1, trace=journal).run(small_plan())
        summary = summarize_journal(journal)
        run_id = outcome.metrics.run_id
        assert run_id in summary["runs"]
        assert summary["runs"][run_id]["status"] == "ok"
        assert summary["aggregate"]["cache"] == outcome.metrics.as_dict()["cache"]
        text = render_summary(summary, fmt="text")
        assert "cell hits / misses" in text
        as_json = json.loads(render_summary(summary, fmt="json"))
        assert as_json["aggregate"]["events"] == summary["aggregate"]["events"]

    def test_queue_wait_separates_wait_from_execute(self):
        metrics = MetricsAggregate()
        bus = RunTelemetry()
        bus.subscribe(metrics)
        bus.emit("unit_submitted", token="u1", attempt=1, backend="serial",
                 unit="cell", label="a", kind="StudyCell")
        time.sleep(0.02)
        bus.emit("unit_finished", token="u1", attempt=1, seconds=0.005,
                 backend="serial", unit="cell", label="a", kind="StudyCell")
        assert metrics.execute_seconds == pytest.approx(0.005)
        assert metrics.queue_wait_seconds > 0.0
        unit = metrics.units["u1"]
        assert unit["queue_wait_seconds"] > 0.01


# ----------------------------------------------------------------------
# Non-interference: tracing changes nothing but the journal
# ----------------------------------------------------------------------


def _cache_bytes(root: Path) -> dict[str, bytes]:
    """Cache entries re-pickled without their ``seconds`` timing field.

    Cache payloads have always carried the cell's wall-clock compute
    time, which no two runs reproduce — traced or not.  Everything
    else (tokens, layout, labels, result values) must be byte-for-byte
    identical between a traced and an untraced run.
    """
    entries: dict[str, bytes] = {}
    for path in sorted(root.rglob("*.pkl")):
        payload = pickle.loads(path.read_bytes())
        payload.pop("seconds", None)
        entries[str(path.relative_to(root))] = pickle.dumps(
            payload, protocol=pickle.HIGHEST_PROTOCOL
        )
    return entries


class TestBitIdentity:
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        repetitions=st.integers(min_value=2, max_value=5),
        chunk_size=st.sampled_from([None, 2]),
    )
    @hyp_settings(max_examples=5, deadline=None)
    def test_tracing_never_changes_results_or_cache(
        self, tmp_path_factory, seed, repetitions, chunk_size
    ):
        tmp_path = tmp_path_factory.mktemp("bitid")
        plan = small_plan(repetitions=repetitions, seed=seed)
        store_off = ResultStore(tmp_path / "off")
        store_on = ResultStore(tmp_path / "on")
        plain = ParallelExecutor(
            workers=1, store=store_off, chunk_size=chunk_size
        ).run(plan)
        traced = ParallelExecutor(
            workers=1,
            store=store_on,
            chunk_size=chunk_size,
            trace=tmp_path / "j.jsonl",
        ).run(plan)
        for key in plain.results:
            assert_studies_equal(plain.results[key], traced.results[key])
        off_bytes = _cache_bytes(tmp_path / "off")
        on_bytes = _cache_bytes(tmp_path / "on")
        assert set(off_bytes) == set(on_bytes)  # same tokens, same layout
        assert off_bytes == on_bytes  # byte-identical entries


# ----------------------------------------------------------------------
# Worker-side spans, dead letters, chaos — the distributed story
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class UnclaimableCell(CellSpec):
    """Submitted but never executed: tests bury it via stale-lease
    reclaim before any worker answers."""


@register_cell_runner(UnclaimableCell)
def _run_unclaimable(cell, settings):  # pragma: no cover - never reached
    raise AssertionError("should be buried before execution")


class TestWorkerSpans:
    def test_in_process_worker_stamps_spans_into_the_journal(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        spool_dir = tmp_path / "q"
        worker = threading.Thread(
            target=run_worker,
            kwargs=dict(root=spool_dir, poll_interval=0.01, idle_timeout=1.0),
        )
        worker.start()
        try:
            backend = SpoolBackend(spool_dir, participate=False)
            outcome = ParallelExecutor(backend=backend, trace=journal).run(
                small_plan()
            )
        finally:
            worker.join(timeout=30)
        assert outcome.backend == "spool"
        spans = journal_events(journal, "worker_span")
        assert len(spans) == len(outcome.plan)
        for span in spans:
            assert span["pid"] == os.getpid()  # in-process thread worker
            assert span["host"]
            assert span["execute_seconds"] >= 0.0
            assert span["claim_latency"] >= 0.0
            assert span["deliveries"] == 0
        assert len(outcome.metrics.worker_spans) == len(spans)

    def test_dead_letter_is_journaled_with_reclaims(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        root = tmp_path / "q"
        sink = JsonlTraceSink(journal)
        bus = RunTelemetry()
        bus.subscribe(sink)
        backend = SpoolBackend(
            root, participate=False, reclaim_seconds=0.0, redeliver_cap=1
        )
        backend.telemetry = bus
        settings = ExperimentSettings(repetitions=1, seed=0)
        backend.open(workers=1, tasks=1, settings=settings)
        future = backend.submit(
            UnclaimableCell(key=("lost",), label="lost", method="-"), settings
        )
        task_id = future.task_id
        for _ in range(2):  # one reclaim under cap, then burial
            claimed = _claim(root, root / "tasks" / f"{task_id}.task")
            assert claimed is not None
            stale = time.time() - 60.0
            os.utime(claimed, (stale, stale))
            backend._reclaim_stale({future})
        assert future.done()  # reads the burial result, emits dead_letter
        backend.close()
        backend.telemetry = None
        bus.close()
        reclaims = journal_events(journal, "lease_reclaim")
        assert len(reclaims) == 2
        assert all(r["task_id"] == task_id for r in reclaims)
        dead = journal_events(journal, "dead_letter")
        assert len(dead) == 1
        assert dead[0]["task_id"] == task_id
        assert dead[0]["label"] == "lost"
        assert "redelivery cap" in dead[0]["reason"]
        replayed = replay_metrics(read_journal(journal))
        assert replayed.dead_letters == 1
        assert replayed.lease_reclaims == 2

    def test_chaos_over_spool_with_detached_worker(self, tmp_path):
        # The acceptance scenario: chaos wrapped around a spool served
        # by a *real* detached `python -m repro worker` interpreter,
        # traced end to end.  Every executed unit must show a complete
        # queued → finished span, worker-side spans must carry the
        # foreign worker's pid, and the injected faults must surface as
        # chaos_inject + retry events.
        journal = tmp_path / "j.jsonl"
        spool_dir = tmp_path / "q"
        src = Path(__file__).resolve().parents[1] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = f"{src}{os.pathsep}" + env.get("PYTHONPATH", "")
        worker = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "worker",
                str(spool_dir),
                "--poll",
                "0.02",
                "--idle-timeout",
                "10",
                "--quiet",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            plan = small_plan()
            backend = ChaosBackend(
                SpoolBackend(spool_dir, participate=False), seed=1, rate=1.0
            )
            outcome = ParallelExecutor(
                backend=backend, max_retries=2, trace=journal
            ).run(plan)
        finally:
            out, err = worker.communicate(timeout=60)
        assert worker.returncode == 0, err
        reference = ParallelExecutor(workers=1).run(plan)
        for key in reference.results:
            assert_studies_equal(reference.results[key], outcome.results[key])

        records = read_journal(journal)
        injected = [r for r in records if r["event"] == "chaos_inject"]
        assert len(injected) == len(plan)  # rate=1.0: every unit faulted
        spans = [r for r in records if r["event"] == "worker_span"]
        assert spans, "no worker-side spans reached the journal"
        assert all(span["pid"] != os.getpid() for span in spans)
        # Faults that raise get retried; the journal shows the loop.
        raising = {"before", "after", "drop"}
        expected_retries = sum(
            1 for r in injected if r["kind"] in raising
        )
        retries = [r for r in records if r["event"] == "retry"]
        assert len(retries) == expected_retries
        assert outcome.retries == expected_retries
        # Completeness despite the chaos: every finished unit has its
        # queued and submitted events, and attempts line up.
        finished = [r for r in records if r["event"] == "unit_finished"]
        assert {r["token"] for r in finished} == {
            r["token"] for r in records if r["event"] == "unit_queued"
        }
        # The summarizer reproduces the live aggregate from disk alone.
        summary = summarize_journal(journal, run_id=outcome.metrics.run_id)
        assert summary["aggregate"]["faults"] == outcome.metrics.as_dict()["faults"]
        assert summary["aggregate"]["cache"] == outcome.metrics.as_dict()["cache"]


# ----------------------------------------------------------------------
# CLI: trace summarize / trace check / cache info
# ----------------------------------------------------------------------


class TestCli:
    @pytest.fixture()
    def journal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        store = ResultStore(tmp_path / "cache")
        executor = ParallelExecutor(workers=1, store=store, chunk_size=2, trace=path)
        executor.run(small_plan())
        executor.run(small_plan())  # second run: all cache hits
        return path

    def test_trace_check_validates_a_journal(self, journal, capsys):
        assert main(["trace", "check", str(journal)]) == 0
        out = capsys.readouterr().out
        assert "2 run(s)" in out and "schema-valid" in out

    def test_trace_check_fails_on_corruption(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("garbage\n", encoding="utf-8")
        assert main(["trace", "check", str(bad)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_trace_summarize_text_and_json(self, journal, capsys):
        assert main(["trace", "summarize", str(journal)]) == 0
        text = capsys.readouterr().out
        assert "cell hits / misses : 2 / 2" in text
        assert main(["trace", "summarize", str(journal), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["aggregate"]["cache"]["hits"] == 2
        assert payload["aggregate"]["cache"]["misses"] == 2

    def test_trace_summarize_filters_by_run_id(self, journal, capsys):
        # Journal order is chronological: run_ids[0] is the cold run.
        run_ids = list(dict.fromkeys(r["run_id"] for r in read_journal(journal)))
        assert main(
            ["trace", "summarize", str(journal), "--run-id", run_ids[0],
             "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert list(payload["runs"]) == [run_ids[0]]
        assert payload["aggregate"]["cache"]["hits"] == 0  # first run: cold

    def test_cache_info_reports_entries_and_groups(self, tmp_path, capsys):
        store = ResultStore(tmp_path / "cache")
        ParallelExecutor(workers=1, store=store).run(small_plan())
        assert main(["cache", "info", "--cache-dir", str(tmp_path / "cache")]) == 0
        out = capsys.readouterr().out
        assert "entries          : 2" in out
        assert "shard entries    : 0" in out

    def test_cache_info_requires_a_directory(self, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert main(["cache", "info"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_cache_info_reads_env_dir(self, tmp_path, monkeypatch, capsys):
        store = ResultStore(tmp_path / "cache")
        ParallelExecutor(workers=1, store=store).run(small_plan())
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert main(["cache", "info"]) == 0
        assert "entries          : 2" in capsys.readouterr().out
