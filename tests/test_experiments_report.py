"""Unit tests for experiment report rendering."""

from __future__ import annotations

import pytest

from repro.exceptions import ValidationError
from repro.experiments.report import ExperimentReport, render_table


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["name", "value"], [["a", 1], ["long-name", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        # All rows have equal width.
        assert len(set(len(line) for line in lines)) == 1

    def test_float_formatting(self):
        text = render_table(["x"], [[0.123456789]])
        assert "0.1235" in text

    def test_rejects_empty_headers(self):
        with pytest.raises(ValidationError):
            render_table([], [])

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValidationError):
            render_table(["a", "b"], [["only one"]])


class TestExperimentReport:
    def _report(self):
        report = ExperimentReport(
            experiment_id="t", title="Test", headers=("a", "b")
        )
        report.add_row(a=1, b=2)
        report.add_row(a=3, b=4)
        return report

    def test_add_row_and_column(self):
        report = self._report()
        assert report.column("a") == [1, 3]
        assert report.column("b") == [2, 4]

    def test_add_row_missing_cell(self):
        report = ExperimentReport("t", "Test", headers=("a", "b"))
        with pytest.raises(ValidationError):
            report.add_row(a=1)

    def test_unknown_column(self):
        with pytest.raises(ValidationError):
            self._report().column("zzz")

    def test_render_includes_title_and_notes(self):
        report = self._report()
        report.notes.append("a note")
        text = report.render()
        assert "== t: Test ==" in text
        assert "note: a note" in text

    def test_str_is_render(self):
        report = self._report()
        assert str(report) == report.render()
