"""Unit tests for profiled KG generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.kg.generators import generate_labels, generate_profiled_kg


class TestGenerateLabels:
    def test_exact_global_accuracy(self, rng):
        sizes = np.full(100, 10, dtype=np.int64)
        labels = generate_labels(sizes, accuracy=0.85, rng=rng)
        assert labels.sum() == round(0.85 * 1000)

    def test_zero_correlation_is_iid(self, rng):
        sizes = np.full(50, 20, dtype=np.int64)
        labels = generate_labels(sizes, 0.5, rng=rng, intra_cluster_correlation=0.0)
        assert labels.sum() == 500

    def test_high_correlation_concentrates_errors(self):
        sizes = np.full(200, 20, dtype=np.int64)
        low = generate_labels(sizes, 0.7, rng=1, intra_cluster_correlation=0.01)
        high = generate_labels(sizes, 0.7, rng=1, intra_cluster_correlation=0.9)

        def cluster_variance(labels):
            means = labels.reshape(200, 20).mean(axis=1)
            return means.var()

        assert cluster_variance(high) > cluster_variance(low)

    @pytest.mark.parametrize("mu", [0.0, 1.0])
    def test_degenerate_accuracy(self, rng, mu):
        sizes = np.full(10, 5, dtype=np.int64)
        labels = generate_labels(sizes, mu, rng=rng)
        assert labels.mean() == mu

    def test_negative_correlation_balances_clusters(self, rng):
        # FACTBENCH mode: cluster means hug the global accuracy.
        sizes = np.full(300, 10, dtype=np.int64)
        labels = generate_labels(sizes, 0.5, rng=rng, intra_cluster_correlation=-0.5)
        means = labels.reshape(300, 10).mean(axis=1)
        # Balanced allocation: between-cluster variance far below the
        # i.i.d. binomial value 0.5*0.5/10 = 0.025.
        assert means.var() < 0.005
        assert labels.sum() == 1_500

    def test_rejects_bad_correlation(self, rng):
        with pytest.raises(ValidationError):
            generate_labels(np.array([5]), 0.5, rng=rng, intra_cluster_correlation=1.0)
        with pytest.raises(ValidationError):
            generate_labels(np.array([5]), 0.5, rng=rng, intra_cluster_correlation=-1.5)

    def test_rejects_empty_sizes(self, rng):
        with pytest.raises(ValidationError):
            generate_labels(np.array([], dtype=np.int64), 0.5, rng=rng)

    def test_rejects_zero_size_cluster(self, rng):
        with pytest.raises(ValidationError):
            generate_labels(np.array([3, 0, 2]), 0.5, rng=rng)


class TestGenerateProfiledKG:
    def test_matches_profile_exactly(self):
        kg = generate_profiled_kg(
            "test", num_facts=1_386, num_clusters=822, accuracy=0.99, seed=0
        )
        assert kg.num_triples == 1_386
        assert kg.num_clusters == 822
        assert kg.accuracy == pytest.approx(round(0.99 * 1_386) / 1_386)

    def test_deterministic_under_seed(self):
        a = generate_profiled_kg("t", 500, 200, 0.8, seed=9)
        b = generate_profiled_kg("t", 500, 200, 0.8, seed=9)
        assert a.triples == b.triples
        assert np.array_equal(a.all_labels, b.all_labels)

    def test_seed_changes_graph(self):
        a = generate_profiled_kg("t", 500, 200, 0.8, seed=1)
        b = generate_profiled_kg("t", 500, 200, 0.8, seed=2)
        assert not np.array_equal(a.cluster_sizes, b.cluster_sizes)

    def test_entity_prefix(self):
        kg = generate_profiled_kg("MyKG", 50, 20, 0.5, seed=0)
        assert all(t.subject.startswith("mykg:e") for t in kg.triples)

    def test_rejects_degenerate_counts(self):
        with pytest.raises(ValidationError):
            generate_profiled_kg("t", 0, 1, 0.5)
        with pytest.raises(ValidationError):
            generate_profiled_kg("t", 10, 0, 0.5)
