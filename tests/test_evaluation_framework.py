"""Unit tests for the iterative evaluation framework (paper Fig. 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.annotation.annotator import NoisyAnnotator
from repro.evaluation.framework import EvaluationConfig, KGAccuracyEvaluator
from repro.exceptions import ConvergenceError, ValidationError
from repro.intervals.ahpd import AdaptiveHPD
from repro.intervals.wald import WaldInterval
from repro.intervals.wilson import WilsonInterval
from repro.sampling.srs import SimpleRandomSampling
from repro.sampling.twcs import TwoStageWeightedClusterSampling


class TestConfig:
    def test_paper_defaults(self):
        config = EvaluationConfig()
        assert config.alpha == 0.05
        assert config.epsilon == 0.05
        assert config.min_triples == 30

    def test_rejects_budget_below_minimum(self):
        with pytest.raises(ValidationError):
            EvaluationConfig(min_triples=100, max_triples=50)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValidationError):
            EvaluationConfig(alpha=1.5)


class TestRunSRS:
    def test_converges_and_meets_moe(self, nell_kg):
        evaluator = KGAccuracyEvaluator(
            nell_kg, SimpleRandomSampling(), AdaptiveHPD()
        )
        result = evaluator.run(rng=0)
        assert result.converged
        assert result.moe <= 0.05
        assert result.n_annotated >= 30

    def test_estimate_near_truth(self, nell_kg):
        evaluator = KGAccuracyEvaluator(
            nell_kg, SimpleRandomSampling(), WilsonInterval()
        )
        estimates = [evaluator.run(rng=seed).mu_hat for seed in range(40)]
        assert np.mean(estimates) == pytest.approx(nell_kg.accuracy, abs=0.02)

    def test_deterministic_under_seed(self, nell_kg):
        evaluator = KGAccuracyEvaluator(nell_kg, SimpleRandomSampling(), AdaptiveHPD())
        a = evaluator.run(rng=123)
        b = evaluator.run(rng=123)
        assert a.n_annotated == b.n_annotated
        assert a.mu_hat == b.mu_hat
        assert a.interval.lower == b.interval.lower

    def test_minimum_sample_respected(self, yago_kg):
        # YAGO's high accuracy converges immediately at the minimum.
        evaluator = KGAccuracyEvaluator(yago_kg, SimpleRandomSampling(), WaldInterval())
        result = evaluator.run(rng=5)
        assert result.n_annotated >= 30

    def test_trace_records_iterations(self, nell_kg):
        evaluator = KGAccuracyEvaluator(nell_kg, SimpleRandomSampling(), WilsonInterval())
        result = evaluator.run(rng=0, keep_trace=True)
        assert len(result.trace) == result.iterations
        # MoE at the final record equals the result's MoE.
        assert result.trace[-1].moe == pytest.approx(result.moe)
        # Sample size grows monotonically along the trace.
        sizes = [record.n_annotated for record in result.trace]
        assert sizes == sorted(sizes)

    def test_no_trace_by_default(self, nell_kg):
        evaluator = KGAccuracyEvaluator(nell_kg, SimpleRandomSampling(), WilsonInterval())
        assert evaluator.run(rng=0).trace == ()

    def test_cost_accounting(self, nell_kg):
        evaluator = KGAccuracyEvaluator(nell_kg, SimpleRandomSampling(), AdaptiveHPD())
        result = evaluator.run(rng=0)
        expected_seconds = result.n_entities * 45 + result.n_triples * 25
        assert result.cost.seconds == pytest.approx(expected_seconds)
        assert result.cost_hours == pytest.approx(expected_seconds / 3600)

    def test_n_entities_at_most_n_triples(self, nell_kg):
        evaluator = KGAccuracyEvaluator(nell_kg, SimpleRandomSampling(), AdaptiveHPD())
        result = evaluator.run(rng=0)
        assert result.n_entities <= result.n_triples


class TestRunTWCS:
    def test_converges(self, nell_kg):
        evaluator = KGAccuracyEvaluator(
            nell_kg, TwoStageWeightedClusterSampling(m=3), AdaptiveHPD()
        )
        result = evaluator.run(rng=0)
        assert result.converged
        assert result.moe <= 0.05
        assert result.n_units >= 2

    def test_units_are_clusters(self, nell_kg):
        evaluator = KGAccuracyEvaluator(
            nell_kg, TwoStageWeightedClusterSampling(m=3), WilsonInterval()
        )
        result = evaluator.run(rng=0)
        # With m = 3 and avg cluster 2.28, triples ≈ units * [1, 3].
        assert result.n_units <= result.n_annotated <= 3 * result.n_units

    def test_twcs_cheaper_than_srs(self, nell_kg):
        # The entity-identification saving is the point of TWCS.
        srs_cost = np.mean(
            [
                KGAccuracyEvaluator(nell_kg, SimpleRandomSampling(), AdaptiveHPD())
                .run(rng=seed)
                .cost_hours
                for seed in range(15)
            ]
        )
        twcs_cost = np.mean(
            [
                KGAccuracyEvaluator(
                    nell_kg, TwoStageWeightedClusterSampling(m=3), AdaptiveHPD()
                )
                .run(rng=seed)
                .cost_hours
                for seed in range(15)
            ]
        )
        assert twcs_cost < srs_cost


class TestBudget:
    def test_budget_raises_by_default(self, medium_kg):
        config = EvaluationConfig(epsilon=0.001, max_triples=60)
        evaluator = KGAccuracyEvaluator(
            medium_kg, SimpleRandomSampling(), WilsonInterval(), config=config
        )
        with pytest.raises(ConvergenceError):
            evaluator.run(rng=0)

    def test_budget_can_return_unconverged(self, medium_kg):
        config = EvaluationConfig(epsilon=0.001, max_triples=60, raise_on_budget=False)
        evaluator = KGAccuracyEvaluator(
            medium_kg, SimpleRandomSampling(), WilsonInterval(), config=config
        )
        result = evaluator.run(rng=0)
        assert not result.converged
        assert result.moe > 0.001


class TestIntervalMemoCache:
    def test_replays_share_solves(self, medium_kg):
        evaluator = KGAccuracyEvaluator(
            medium_kg, SimpleRandomSampling(), AdaptiveHPD()
        )
        first = evaluator.run(rng=0)
        misses_after_first = evaluator.cache_misses
        assert misses_after_first > 0
        # An identical replay walks through the same evidence states:
        # every stop-rule consultation must be a cache hit.
        second = evaluator.run(rng=0)
        assert evaluator.cache_misses == misses_after_first
        assert evaluator.cache_hits >= second.iterations
        assert second.interval == first.interval

    def test_cached_intervals_match_direct_compute(self, medium_kg):
        method = WilsonInterval()
        evaluator = KGAccuracyEvaluator(medium_kg, SimpleRandomSampling(), method)
        result = evaluator.run(rng=1)
        from repro.estimators.base import Evidence

        direct = method.compute(
            Evidence.from_counts(
                round(result.mu_hat * result.n_annotated), result.n_annotated
            ),
            evaluator.config.alpha,
        )
        assert result.interval.lower == pytest.approx(direct.lower, abs=1e-12)
        assert result.interval.upper == pytest.approx(direct.upper, abs=1e-12)

    def test_method_reassignment_never_serves_stale_intervals(self, medium_kg):
        evaluator = KGAccuracyEvaluator(
            medium_kg, SimpleRandomSampling(), WilsonInterval()
        )
        evaluator.run(rng=0)
        evaluator.method = WaldInterval()
        result = evaluator.run(rng=0)
        assert result.interval.method == "Wald"

    def test_clear_interval_cache(self, medium_kg):
        evaluator = KGAccuracyEvaluator(
            medium_kg, SimpleRandomSampling(), WilsonInterval()
        )
        evaluator.run(rng=0)
        assert evaluator.cache_misses > 0
        evaluator.clear_interval_cache()
        assert evaluator.cache_hits == 0
        assert evaluator.cache_misses == 0
        assert not evaluator._interval_cache


class TestAnnotatorIntegration:
    def test_noisy_annotator_biases_estimate(self, medium_kg):
        # A worker who flips 30% of labels pulls the estimate toward 0.5.
        evaluator = KGAccuracyEvaluator(
            medium_kg,
            SimpleRandomSampling(),
            WilsonInterval(),
            annotator=NoisyAnnotator(0.3, seed=0),
        )
        estimates = [evaluator.run(rng=seed).mu_hat for seed in range(30)]
        expected = 0.7 * medium_kg.accuracy + 0.3 * (1 - medium_kg.accuracy)
        assert np.mean(estimates) == pytest.approx(expected, abs=0.04)

    def test_repr(self, nell_kg):
        evaluator = KGAccuracyEvaluator(nell_kg, SimpleRandomSampling(), AdaptiveHPD())
        text = repr(evaluator)
        assert "SRS" in text and "aHPD" in text
