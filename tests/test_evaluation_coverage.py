"""Unit tests for the empirical coverage audit."""

from __future__ import annotations

import pytest

from repro.evaluation.coverage import coverage_profile, empirical_coverage
from repro.exceptions import ValidationError
from repro.intervals.hpd import HPDCredibleInterval
from repro.intervals.wald import WaldInterval
from repro.intervals.wilson import WilsonInterval


class TestEmpiricalCoverage:
    def test_wilson_near_nominal(self):
        result = empirical_coverage(WilsonInterval(), mu=0.85, n=60, repetitions=3_000, rng=0)
        assert result.coverage == pytest.approx(0.95, abs=0.03)

    def test_wald_undercover_near_boundary(self):
        # The Example 1 pathology: at mu = 0.99 and n = 30 the unanimous
        # outcome (zero-width interval missing mu) dominates.
        wald = empirical_coverage(WaldInterval(), mu=0.99, n=30, repetitions=3_000, rng=0)
        wilson = empirical_coverage(WilsonInterval(), mu=0.99, n=30, repetitions=3_000, rng=0)
        assert wald.coverage < 0.85
        assert wilson.coverage > wald.coverage

    def test_hpd_calibrated_mid_range(self):
        result = empirical_coverage(
            HPDCredibleInterval(), mu=0.7, n=100, repetitions=3_000, rng=0
        )
        assert result.coverage == pytest.approx(0.95, abs=0.03)

    def test_shortfall_sign(self):
        result = empirical_coverage(WaldInterval(), mu=0.99, n=30, repetitions=500, rng=0)
        assert result.shortfall > 0

    def test_nominal_property(self):
        result = empirical_coverage(WilsonInterval(), mu=0.5, n=30, repetitions=100, rng=0)
        assert result.nominal == pytest.approx(0.95)

    def test_deterministic(self):
        a = empirical_coverage(WilsonInterval(), mu=0.8, n=30, repetitions=200, rng=5)
        b = empirical_coverage(WilsonInterval(), mu=0.8, n=30, repetitions=200, rng=5)
        assert a.coverage == b.coverage

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValidationError):
            empirical_coverage(WilsonInterval(), mu=1.5, n=30)
        with pytest.raises(ValidationError):
            empirical_coverage(WilsonInterval(), mu=0.5, n=0)


class TestCoverageProfile:
    def test_one_result_per_mu(self):
        results = coverage_profile(
            WilsonInterval(), mus=[0.5, 0.9, 0.99], n=30, repetitions=200
        )
        assert [r.mu for r in results] == [0.5, 0.9, 0.99]
        assert all(0.0 <= r.coverage <= 1.0 for r in results)
