"""Unit tests for the empirical coverage audit."""

from __future__ import annotations

import numpy as np
import pytest

from repro.estimators.base import Evidence
from repro.evaluation.coverage import coverage_profile, empirical_coverage
from repro.exceptions import ValidationError
from repro.intervals.ahpd import AdaptiveHPD
from repro.intervals.hpd import HPDCredibleInterval
from repro.intervals.wald import WaldInterval
from repro.intervals.wilson import WilsonInterval
from repro.stats.rng import spawn_rng


class TestEmpiricalCoverage:
    def test_wilson_near_nominal(self):
        result = empirical_coverage(WilsonInterval(), mu=0.85, n=60, repetitions=3_000, rng=0)
        assert result.coverage == pytest.approx(0.95, abs=0.03)

    def test_wald_undercover_near_boundary(self):
        # The Example 1 pathology: at mu = 0.99 and n = 30 the unanimous
        # outcome (zero-width interval missing mu) dominates.
        wald = empirical_coverage(WaldInterval(), mu=0.99, n=30, repetitions=3_000, rng=0)
        wilson = empirical_coverage(WilsonInterval(), mu=0.99, n=30, repetitions=3_000, rng=0)
        assert wald.coverage < 0.85
        assert wilson.coverage > wald.coverage

    def test_hpd_calibrated_mid_range(self):
        result = empirical_coverage(
            HPDCredibleInterval(), mu=0.7, n=100, repetitions=3_000, rng=0
        )
        assert result.coverage == pytest.approx(0.95, abs=0.03)

    def test_shortfall_sign(self):
        result = empirical_coverage(WaldInterval(), mu=0.99, n=30, repetitions=500, rng=0)
        assert result.shortfall > 0

    def test_nominal_property(self):
        result = empirical_coverage(WilsonInterval(), mu=0.5, n=30, repetitions=100, rng=0)
        assert result.nominal == pytest.approx(0.95)

    def test_deterministic(self):
        a = empirical_coverage(WilsonInterval(), mu=0.8, n=30, repetitions=200, rng=5)
        b = empirical_coverage(WilsonInterval(), mu=0.8, n=30, repetitions=200, rng=5)
        assert a.coverage == b.coverage

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValidationError):
            empirical_coverage(WilsonInterval(), mu=1.5, n=30)
        with pytest.raises(ValidationError):
            empirical_coverage(WilsonInterval(), mu=0.5, n=0)


    def test_unique_outcome_solve_budget(self):
        # The acceptance bar of the batch engine: 2,000 repetitions at
        # n = 30 must trigger at most 31 interval solves (one per
        # distinct binomial outcome), routed through compute_batch.
        method = AdaptiveHPD()
        solved = []
        original = method.compute_batch

        def counting(evidences, alpha):
            solved.append(len(evidences))
            return original(evidences, alpha)

        method.compute_batch = counting
        empirical_coverage(method, mu=0.9, n=30, repetitions=2_000, rng=0)
        assert len(solved) == 1
        assert solved[0] <= 31

    def test_matches_per_repetition_loop(self):
        # The unique-outcome aggregation must reproduce the naive
        # per-repetition loop exactly (same draws, same statistics).
        method = WilsonInterval()
        result = empirical_coverage(method, mu=0.9, n=30, repetitions=1_000, rng=3)
        taus = spawn_rng(3).binomial(30, 0.9, size=1_000)
        hits = 0
        widths = []
        for tau in taus:
            interval = method.compute(Evidence.from_counts(int(tau), 30), 0.05)
            hits += interval.contains(0.9)
            widths.append(interval.width)
        assert result.coverage == hits / 1_000
        assert result.mean_width == pytest.approx(float(np.mean(widths)), abs=1e-12)


class TestCoverageProfile:
    def test_one_result_per_mu(self):
        results = coverage_profile(
            WilsonInterval(), mus=[0.5, 0.9, 0.99], n=30, repetitions=200
        )
        assert [r.mu for r in results] == [0.5, 0.9, 0.99]
        assert all(0.0 <= r.coverage <= 1.0 for r in results)


class TestTauCountsAndRepRange:
    def test_partition_histograms_sum_to_full(self):
        from repro.evaluation.coverage import tau_counts

        full = tau_counts(0.8, 25, 100, rng=7)
        parts = [
            tau_counts(0.8, 25, 100, rng=7, rep_range=window)
            for window in ((0, 33), (33, 66), (66, 100))
        ]
        assert np.array_equal(np.sum(parts, axis=0), full)
        assert full.sum() == 100

    def test_coverage_from_counts_matches_empirical(self):
        from repro.evaluation.coverage import coverage_from_counts, tau_counts

        method = WilsonInterval()
        counts = tau_counts(0.9, 30, 500, rng=3)
        rebuilt = coverage_from_counts(method, 0.9, 30, 0.05, counts)
        direct = empirical_coverage(method, mu=0.9, n=30, repetitions=500, rng=3)
        assert rebuilt == direct

    def test_rep_range_window_consumes_stream_identically(self):
        # The window's histogram is the full stream's slice, so merging
        # the windows of any partition reproduces the full measurement.
        from repro.evaluation.coverage import coverage_from_counts, tau_counts

        method = WilsonInterval()
        full = empirical_coverage(method, mu=0.85, n=20, repetitions=60, rng=5)
        parts = [
            tau_counts(0.85, 20, 60, rng=5, rep_range=window)
            for window in ((0, 7), (7, 14), (14, 60))
        ]
        merged = coverage_from_counts(
            method, 0.85, 20, 0.05, np.sum(parts, axis=0), repetitions=60
        )
        assert merged == full

    def test_windowed_empirical_coverage_repetitions(self):
        result = empirical_coverage(
            WilsonInterval(), mu=0.85, n=20, repetitions=60, rng=5, rep_range=(10, 25)
        )
        assert result.repetitions == 15

    def test_invalid_window_rejected(self):
        with pytest.raises(ValidationError):
            empirical_coverage(
                WilsonInterval(), mu=0.85, n=20, repetitions=60, rep_range=(25, 10)
            )
