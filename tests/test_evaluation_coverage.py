"""Unit tests for the empirical coverage audit."""

from __future__ import annotations

import numpy as np
import pytest

from repro.estimators.base import Evidence
from repro.evaluation.coverage import coverage_profile, empirical_coverage
from repro.exceptions import ValidationError
from repro.intervals.ahpd import AdaptiveHPD
from repro.intervals.hpd import HPDCredibleInterval
from repro.intervals.wald import WaldInterval
from repro.intervals.wilson import WilsonInterval
from repro.stats.rng import spawn_rng


class TestEmpiricalCoverage:
    def test_wilson_near_nominal(self):
        result = empirical_coverage(WilsonInterval(), mu=0.85, n=60, repetitions=3_000, rng=0)
        assert result.coverage == pytest.approx(0.95, abs=0.03)

    def test_wald_undercover_near_boundary(self):
        # The Example 1 pathology: at mu = 0.99 and n = 30 the unanimous
        # outcome (zero-width interval missing mu) dominates.
        wald = empirical_coverage(WaldInterval(), mu=0.99, n=30, repetitions=3_000, rng=0)
        wilson = empirical_coverage(WilsonInterval(), mu=0.99, n=30, repetitions=3_000, rng=0)
        assert wald.coverage < 0.85
        assert wilson.coverage > wald.coverage

    def test_hpd_calibrated_mid_range(self):
        result = empirical_coverage(
            HPDCredibleInterval(), mu=0.7, n=100, repetitions=3_000, rng=0
        )
        assert result.coverage == pytest.approx(0.95, abs=0.03)

    def test_shortfall_sign(self):
        result = empirical_coverage(WaldInterval(), mu=0.99, n=30, repetitions=500, rng=0)
        assert result.shortfall > 0

    def test_nominal_property(self):
        result = empirical_coverage(WilsonInterval(), mu=0.5, n=30, repetitions=100, rng=0)
        assert result.nominal == pytest.approx(0.95)

    def test_deterministic(self):
        a = empirical_coverage(WilsonInterval(), mu=0.8, n=30, repetitions=200, rng=5)
        b = empirical_coverage(WilsonInterval(), mu=0.8, n=30, repetitions=200, rng=5)
        assert a.coverage == b.coverage

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValidationError):
            empirical_coverage(WilsonInterval(), mu=1.5, n=30)
        with pytest.raises(ValidationError):
            empirical_coverage(WilsonInterval(), mu=0.5, n=0)


    def test_unique_outcome_solve_budget(self):
        # The acceptance bar of the batch engine: 2,000 repetitions at
        # n = 30 must trigger at most 31 interval solves (one per
        # distinct binomial outcome), routed through compute_batch.
        method = AdaptiveHPD()
        solved = []
        original = method.compute_batch

        def counting(evidences, alpha):
            solved.append(len(evidences))
            return original(evidences, alpha)

        method.compute_batch = counting
        empirical_coverage(method, mu=0.9, n=30, repetitions=2_000, rng=0)
        assert len(solved) == 1
        assert solved[0] <= 31

    def test_matches_per_repetition_loop(self):
        # The unique-outcome aggregation must reproduce the naive
        # per-repetition loop exactly (same draws, same statistics).
        method = WilsonInterval()
        result = empirical_coverage(method, mu=0.9, n=30, repetitions=1_000, rng=3)
        taus = spawn_rng(3).binomial(30, 0.9, size=1_000)
        hits = 0
        widths = []
        for tau in taus:
            interval = method.compute(Evidence.from_counts(int(tau), 30), 0.05)
            hits += interval.contains(0.9)
            widths.append(interval.width)
        assert result.coverage == hits / 1_000
        assert result.mean_width == pytest.approx(float(np.mean(widths)), abs=1e-12)


class TestCoverageProfile:
    def test_one_result_per_mu(self):
        results = coverage_profile(
            WilsonInterval(), mus=[0.5, 0.9, 0.99], n=30, repetitions=200
        )
        assert [r.mu for r in results] == [0.5, 0.9, 0.99]
        assert all(0.0 <= r.coverage <= 1.0 for r in results)
