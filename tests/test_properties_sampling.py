"""Property-based tests of the sampling and estimation layers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.estimators.base import Evidence
from repro.estimators.cluster import twcs_evidence
from repro.kg.generators import generate_profiled_kg
from repro.sampling.srs import SimpleRandomSampling
from repro.sampling.twcs import TwoStageWeightedClusterSampling


@st.composite
def small_kg_params(draw):
    clusters = draw(st.integers(5, 60))
    facts = draw(st.integers(clusters, clusters * 8))
    accuracy = draw(st.floats(0.0, 1.0))
    seed = draw(st.integers(0, 2**20))
    return clusters, facts, accuracy, seed


@given(params=small_kg_params())
@settings(max_examples=40, deadline=None)
def test_generated_kg_matches_requested_stats(params):
    clusters, facts, accuracy, seed = params
    kg = generate_profiled_kg("prop", facts, clusters, accuracy, seed=seed)
    assert kg.num_triples == facts
    assert kg.num_clusters == clusters
    assert kg.accuracy == pytest.approx(round(accuracy * facts) / facts)


@given(params=small_kg_params(), units=st.integers(1, 20), seed=st.integers(0, 1_000))
@settings(max_examples=40, deadline=None)
def test_srs_evidence_invariants(params, units, seed):
    clusters, facts, accuracy, kg_seed = params
    kg = generate_profiled_kg("prop", facts, clusters, accuracy, seed=kg_seed)
    units = min(units, facts)
    srs = SimpleRandomSampling()
    state = srs.new_state()
    rng = np.random.default_rng(seed)
    batch = srs.draw(kg, state, units=units, rng=rng)
    srs.update(state, batch, kg.labels(batch.indices))
    ev = srs.evidence(state)
    assert 0.0 <= ev.mu_hat <= 1.0
    assert ev.n_annotated == units
    assert ev.n_effective == units
    assert ev.variance >= 0.0
    # Sample labels are a subset of the population: a sample proportion
    # of 1 requires a non-empty correct population and vice versa.
    if ev.mu_hat > 0:
        assert kg.accuracy > 0
    if ev.mu_hat < 1:
        assert kg.accuracy < 1


@given(params=small_kg_params(), units=st.integers(2, 15), seed=st.integers(0, 1_000))
@settings(max_examples=40, deadline=None)
def test_twcs_evidence_invariants(params, units, seed):
    clusters, facts, accuracy, kg_seed = params
    kg = generate_profiled_kg("prop", facts, clusters, accuracy, seed=kg_seed)
    twcs = TwoStageWeightedClusterSampling(m=3)
    state = twcs.new_state()
    rng = np.random.default_rng(seed)
    batch = twcs.draw(kg, state, units=units, rng=rng)
    twcs.update(state, batch, kg.labels(batch.indices))
    ev = twcs.evidence(state)
    assert 0.0 <= ev.mu_hat <= 1.0
    assert ev.n_effective > 0.0
    assert 0.0 <= ev.tau_effective <= ev.n_effective + 1e-9
    assert len(state.cluster_means) == units


@given(
    means=st.lists(st.floats(0.0, 1.0), min_size=2, max_size=40),
    per_cluster=st.integers(1, 5),
)
@settings(max_examples=60, deadline=None)
def test_twcs_evidence_from_arbitrary_means(means, per_cluster):
    ev = twcs_evidence(means, n_annotated=len(means) * per_cluster)
    assert ev.mu_hat == pytest.approx(float(np.mean(means)))
    assert ev.variance >= 0.0


@given(tau=st.integers(0, 500), extra=st.integers(0, 500))
@settings(max_examples=60, deadline=None)
def test_evidence_from_counts_consistency(tau, extra):
    n = tau + extra
    if n == 0:
        return
    ev = Evidence.from_counts(tau, n)
    assert ev.tau_effective == tau
    assert ev.n_effective == n
    assert ev.mu_hat * n == pytest.approx(tau)
    # Variance formula is exact.
    assert ev.variance == pytest.approx(ev.mu_hat * (1 - ev.mu_hat) / n)
