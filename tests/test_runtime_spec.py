"""Unit tests for the runtime cell/plan description layer."""

from __future__ import annotations

import pytest

from repro.exceptions import ValidationError
from repro.experiments.config import ExperimentSettings
from repro.experiments._studies import strategy_spec
from repro.intervals.ahpd import AdaptiveHPD
from repro.intervals.clopper_pearson import ClopperPearsonInterval
from repro.intervals.et import ETCredibleInterval
from repro.intervals.hpd import HPDCredibleInterval
from repro.intervals.priors import KERMAN
from repro.intervals.wald import WaldInterval
from repro.runtime import (
    CACHE_VERSION,
    CoverageCell,
    StudyCell,
    StudyPlan,
    build_kg,
    build_method,
    build_strategy,
    cache_token,
)
from repro.sampling.srs import SimpleRandomSampling
from repro.sampling.stratified import StratifiedPredicateSampling
from repro.sampling.twcs import TwoStageWeightedClusterSampling
from repro.sampling.wcs import WeightedClusterSampling

SETTINGS = ExperimentSettings(repetitions=5)


def _cell(**overrides) -> StudyCell:
    base = dict(
        key=("NELL", "SRS", "aHPD"),
        label="NELL/SRS/aHPD",
        method="aHPD",
        dataset="NELL",
        strategy="SRS",
        seed_stream=(7,),
    )
    base.update(overrides)
    return StudyCell(**base)


class TestStudyPlan:
    def test_rejects_duplicate_keys(self):
        cell = _cell()
        with pytest.raises(ValidationError):
            StudyPlan(settings=SETTINGS, cells=(cell, cell), name="dup")

    def test_len(self):
        plan = StudyPlan(
            settings=SETTINGS,
            cells=(_cell(), _cell(key=("other",))),
        )
        assert len(plan) == 2


class TestCacheToken:
    def test_deterministic(self):
        assert cache_token(_cell(), SETTINGS) == cache_token(_cell(), SETTINGS)

    def test_covers_cell_fields(self):
        base = cache_token(_cell(), SETTINGS)
        assert cache_token(_cell(seed_stream=(8,)), SETTINGS) != base
        assert cache_token(_cell(method="Wilson"), SETTINGS) != base
        assert cache_token(_cell(strategy="TWCS:3"), SETTINGS) != base
        assert cache_token(_cell(alpha=0.01), SETTINGS) != base
        assert (
            cache_token(_cell(priors=((80.0, 20.0, "p"),)), SETTINGS) != base
        )

    def test_covers_settings_fields(self):
        base = cache_token(_cell(), SETTINGS)
        for change in (
            {"repetitions": 6},
            {"seed": 1},
            {"dataset_seed": 43},
            {"alpha": 0.01},
            {"epsilon": 0.04},
            {"solver": "slsqp"},
        ):
            settings = ExperimentSettings(
                **{"repetitions": 5, **change}  # type: ignore[arg-type]
            )
            assert cache_token(_cell(), settings) != base, change

    def test_kind_disambiguates(self):
        # A coverage cell and a study cell must never collide, even if
        # their shared fields agree.
        study = _cell()
        coverage = CoverageCell(
            key=study.key, label=study.label, method=study.method
        )
        assert cache_token(study, SETTINGS) != cache_token(coverage, SETTINGS)

    def test_version_pinned(self):
        # Bumping CACHE_VERSION is the documented way to invalidate old
        # payloads; this guards against accidental bumps.  2: cells grew
        # the picklable method_payload field.
        assert CACHE_VERSION == 2


class TestBuildStrategy:
    def test_srs(self):
        assert isinstance(build_strategy("SRS"), SimpleRandomSampling)

    def test_twcs_with_cap(self):
        strategy = build_strategy("TWCS:5")
        assert isinstance(strategy, TwoStageWeightedClusterSampling)
        assert strategy.m == 5

    def test_twcs_requires_cap(self):
        with pytest.raises(ValidationError):
            build_strategy("TWCS")

    def test_wcs_and_strat(self):
        assert isinstance(build_strategy("WCS"), WeightedClusterSampling)
        assert isinstance(build_strategy("STRAT"), StratifiedPredicateSampling)

    def test_unknown(self):
        with pytest.raises(ValidationError):
            build_strategy("BOGUS")

    def test_strategy_spec_resolves_paper_m(self):
        assert strategy_spec("TWCS", "NELL") == "TWCS:3"
        assert strategy_spec("TWCS", "SYN100M") == "TWCS:5"
        assert strategy_spec("SRS", "NELL") == "SRS"


class TestBuildMethod:
    def test_plain_families(self):
        assert isinstance(build_method("Wald"), WaldInterval)
        assert isinstance(build_method("cp"), ClopperPearsonInterval)
        assert build_method("wilson").name == "Wilson"

    def test_priors(self):
        et = build_method("ET:Kerman")
        assert isinstance(et, ETCredibleInterval)
        assert et.name == "ET[Kerman]"
        hpd = build_method("HPD:Kerman", solver="slsqp")
        assert isinstance(hpd, HPDCredibleInterval)
        assert hpd.solver == "slsqp"
        assert hpd.prior == KERMAN

    def test_ahpd_informative(self):
        method = build_method("aHPD", priors=((80.0, 20.0, "Similar"),))
        assert isinstance(method, AdaptiveHPD)
        assert [p.name for p in method.priors] == ["Similar"]

    def test_unknown(self):
        with pytest.raises(ValidationError):
            build_method("madeup")
        with pytest.raises(ValidationError):
            build_method("ET:NotAPrior")


class TestBuildKG:
    def test_profile_memoised(self):
        first = build_kg("YAGO", 42)
        again = build_kg("YAGO", 42)
        assert first is again

    def test_seed_part_of_memo_key(self):
        assert build_kg("YAGO", 42) is not build_kg("YAGO", 7)

    def test_file_spec(self, tmp_path, tiny_kg):
        from repro.kg.io import save_kg

        path = tmp_path / "kg.tsv"
        save_kg(tiny_kg, path)
        kg = build_kg(f"file:{path}", 0)
        assert kg.num_triples == tiny_kg.num_triples
