"""Unit tests for multi-annotator aggregation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.annotation.annotator import NoisyAnnotator, OracleAnnotator
from repro.annotation.pool import AnnotatorPool, default_crowd, estimate_worker_quality
from repro.exceptions import ValidationError


class TestAnnotatorPool:
    def test_unanimous_oracles(self, tiny_kg):
        pool = AnnotatorPool([OracleAnnotator(), OracleAnnotator(), OracleAnnotator()])
        idx = np.arange(tiny_kg.num_triples)
        assert np.array_equal(pool.annotate(tiny_kg, idx), tiny_kg.labels(idx))

    def test_majority_beats_single_noisy_worker(self, medium_kg):
        # Two reliable + one adversarial worker: majority should follow
        # the reliable pair.
        pool = AnnotatorPool(
            [OracleAnnotator(), OracleAnnotator(), NoisyAnnotator(1.0, seed=0)]
        )
        idx = np.arange(200)
        assert np.array_equal(pool.annotate(medium_kg, idx), medium_kg.labels(idx))

    def test_crowd_accuracy_beats_worst_worker(self, medium_kg):
        workers = [NoisyAnnotator(rate, seed=i) for i, rate in enumerate((0.1, 0.15, 0.2))]
        pool = AnnotatorPool(workers)
        idx = np.arange(medium_kg.num_triples)
        truth = medium_kg.labels(idx)
        crowd_acc = float(np.mean(pool.annotate(medium_kg, idx, rng=0) == truth))
        assert crowd_acc > 0.85  # better than the 0.8-quality worker

    def test_weights_dominate(self, medium_kg):
        # An expert with overwhelming weight outvotes two liars.
        pool = AnnotatorPool(
            [OracleAnnotator(), NoisyAnnotator(1.0, seed=0), NoisyAnnotator(1.0, seed=1)],
            weights=[10.0, 1.0, 1.0],
        )
        idx = np.arange(100)
        assert np.array_equal(pool.annotate(medium_kg, idx), medium_kg.labels(idx))

    def test_tie_breaks_toward_correct(self, tiny_kg):
        pool = AnnotatorPool(
            [OracleAnnotator(), NoisyAnnotator(1.0, seed=0)]
        )
        idx = np.arange(tiny_kg.num_triples)
        judged = pool.annotate(tiny_kg, idx)
        # Oracle says truth, liar says inverse: equal weights tie -> True.
        assert judged.all()

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            AnnotatorPool([])

    def test_rejects_weight_mismatch(self):
        with pytest.raises(ValidationError):
            AnnotatorPool([OracleAnnotator()], weights=[1.0, 2.0])

    def test_rejects_non_annotator(self):
        with pytest.raises(ValidationError):
            AnnotatorPool(["not a worker"])  # type: ignore[list-item]

    def test_rejects_all_zero_weights(self):
        with pytest.raises(ValidationError):
            AnnotatorPool([OracleAnnotator(), OracleAnnotator()], weights=[0.0, 0.0])

    def test_len(self):
        assert len(AnnotatorPool([OracleAnnotator(), OracleAnnotator()])) == 2


class TestWorkerQuality:
    def test_oracle_quality_is_one(self, medium_kg):
        quality = estimate_worker_quality(
            OracleAnnotator(), medium_kg, np.arange(100)
        )
        assert quality == 1.0

    def test_noisy_quality_estimate(self, medium_kg):
        worker = NoisyAnnotator(0.25, seed=0)
        quality = estimate_worker_quality(worker, medium_kg, np.arange(2_000))
        assert quality == pytest.approx(0.75, abs=0.05)

    def test_rejects_empty_gold(self, medium_kg):
        with pytest.raises(ValidationError):
            estimate_worker_quality(OracleAnnotator(), medium_kg, [])


class TestDefaultCrowd:
    def test_builds_three_workers(self):
        crowd = default_crowd(seed=0)
        assert len(crowd) == 3
