"""Unit tests for the binomial helpers against scipy's reference."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.exceptions import ValidationError
from repro.stats.binomial import binomial_cdf, binomial_pmf, binomial_pmf_matrix


class TestBinomialPmf:
    @pytest.mark.parametrize("mu", [0.1, 0.5, 0.91])
    def test_matches_scipy(self, mu):
        n = 30
        taus = np.arange(n + 1, dtype=float)
        ours = binomial_pmf(taus, n, mu)
        ref = scipy_stats.binom.pmf(taus, n, mu)
        assert np.allclose(ours, ref)

    def test_sums_to_one(self):
        pmf = binomial_pmf(np.arange(51, dtype=float), 50, 0.37)
        assert pmf.sum() == pytest.approx(1.0)

    @pytest.mark.parametrize("mu", [0.0, 1.0])
    def test_degenerate_rates(self, mu):
        pmf = binomial_pmf(np.arange(11, dtype=float), 10, mu)
        assert pmf.sum() == pytest.approx(1.0)
        assert pmf[0 if mu == 0.0 else 10] == pytest.approx(1.0)

    def test_scalar_output(self):
        assert binomial_pmf(3.0, 10, 0.5) == pytest.approx(
            scipy_stats.binom.pmf(3, 10, 0.5)
        )

    def test_rejects_bad_n(self):
        with pytest.raises(ValidationError):
            binomial_pmf(1.0, 0, 0.5)


class TestBinomialPmfMatrix:
    def test_shape_and_rows(self):
        mus = np.array([0.2, 0.8])
        matrix = binomial_pmf_matrix(20, mus)
        assert matrix.shape == (2, 21)
        assert np.allclose(matrix.sum(axis=1), 1.0)

    def test_rows_match_pmf(self):
        matrix = binomial_pmf_matrix(15, np.array([0.6]))
        ref = scipy_stats.binom.pmf(np.arange(16), 15, 0.6)
        assert np.allclose(matrix[0], ref)


class TestBinomialCdf:
    @pytest.mark.parametrize("tau", [0, 5, 15, 29, 30])
    def test_matches_scipy(self, tau):
        assert binomial_cdf(tau, 30, 0.91) == pytest.approx(
            scipy_stats.binom.cdf(tau, 30, 0.91)
        )

    def test_out_of_range(self):
        assert binomial_cdf(-1, 10, 0.5) == 0.0
        assert binomial_cdf(10, 10, 0.5) == 1.0
