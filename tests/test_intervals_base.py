"""Unit tests for the Interval value type and critical values."""

from __future__ import annotations

import pytest
from scipy import stats as scipy_stats

from repro.exceptions import ValidationError
from repro.intervals.base import Interval, critical_value


class TestCriticalValue:
    @pytest.mark.parametrize("alpha", [0.10, 0.05, 0.01])
    def test_matches_scipy(self, alpha):
        assert critical_value(alpha) == pytest.approx(
            scipy_stats.norm.ppf(1 - alpha / 2)
        )

    def test_known_value(self):
        assert critical_value(0.05) == pytest.approx(1.959964, abs=1e-5)

    def test_rejects_degenerate(self):
        with pytest.raises(ValidationError):
            critical_value(0.0)


class TestInterval:
    def test_width_and_moe(self):
        interval = Interval(lower=0.8, upper=0.9, alpha=0.05)
        assert interval.width == pytest.approx(0.1)
        assert interval.moe == pytest.approx(0.05)
        assert interval.midpoint == pytest.approx(0.85)
        assert interval.confidence == pytest.approx(0.95)

    def test_contains(self):
        interval = Interval(lower=0.2, upper=0.6, alpha=0.05)
        assert interval.contains(0.2)
        assert interval.contains(0.6)
        assert interval.contains(0.4)
        assert not interval.contains(0.61)

    def test_zero_width_allowed(self):
        # The Wald pathology produces zero-width intervals; the value
        # type must represent them (Example 1).
        interval = Interval(lower=1.0, upper=1.0, alpha=0.05)
        assert interval.width == 0.0
        assert interval.contains(1.0)

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValidationError):
            Interval(lower=0.9, upper=0.1, alpha=0.05)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValidationError):
            Interval(lower=0.1, upper=0.2, alpha=0.0)

    def test_overshoot_representable_and_clippable(self):
        # Wald can overshoot [0, 1]; clipping is presentation-only.
        interval = Interval(lower=0.95, upper=1.05, alpha=0.05, method="Wald")
        clipped = interval.clipped()
        assert clipped.upper == 1.0
        assert clipped.lower == 0.95
        assert clipped.method == "Wald"
        # Raw width (used by the stop rule) is unchanged on the original.
        assert interval.width == pytest.approx(0.1)

    def test_str_rendering(self):
        text = str(Interval(lower=0.1, upper=0.3, alpha=0.05, method="Wilson"))
        assert "Wilson" in text
        assert "0.1000" in text
