"""Tests for the audit service: requests, concurrency, cache sharing.

The service promises three things worth testing hard: a request
submitted over the wire is *byte-identical* to the same grid run
standalone (shared StudyRequest code path), concurrent requests with
different RunContexts share one ResultStore (cache hits cross
requests), and one request failing never poisons its siblings.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.cli import main as cli_main
from repro.exceptions import ReproError, ValidationError
from repro.runtime import ResultStore, execute
from repro.runtime.service import (
    AuditService,
    StudyRequest,
    parse_address,
    ping_service,
    render_study_table,
    service_status,
    shutdown_service,
    submit_request,
)
from repro.runtime.settings import RunContext

GRID = {
    "datasets": "NELL",
    "strategies": "srs",
    "methods": "wald,wilson",
    "repetitions": 4,
}
GRID_ARGS = [
    "--datasets", "NELL", "--strategies", "srs",
    "--methods", "wald,wilson", "--reps", "4",
]


def standalone_table(capsys, extra=()) -> str:
    """The table `python -m repro study` prints for GRID (summary line
    stripped — it carries volatile wall-clock seconds)."""
    assert cli_main(["study", *GRID_ARGS, "--quiet", *extra]) == 0
    out = capsys.readouterr().out
    return "\n".join(out.splitlines()[:-1])


class running_service:
    """Context manager: an AuditService on a unix socket, in a thread."""

    def __init__(self, tmp_path, **kwargs):
        self.socket_path = tmp_path / "svc.sock"
        kwargs.setdefault("quiet", True)
        self.service = AuditService(**kwargs)
        self.thread = None

    def __enter__(self):
        loop = asyncio.new_event_loop()
        ready = loop.create_future()
        self.thread = threading.Thread(
            target=lambda: loop.run_until_complete(
                self.service.serve(socket_path=self.socket_path, ready=ready)
            ),
            daemon=True,
        )
        self.thread.start()
        deadline = time.monotonic() + 10
        while not ready.done():
            assert time.monotonic() < deadline, "service did not start"
            time.sleep(0.01)
        return self

    @property
    def address(self):
        return ("unix", str(self.socket_path))

    def __exit__(self, *exc):
        try:
            shutdown_service(self.address)
        except ReproError:
            pass
        self.thread.join(timeout=10)
        assert not self.thread.is_alive()


class TestStudyRequest:
    def test_normalises_names_and_folds_case(self):
        request = StudyRequest(
            datasets="nell, yago", strategies=("SRS",), methods="Wald"
        )
        assert request.datasets == ("NELL", "YAGO")
        assert request.strategies == ("srs",)
        assert request.methods == ("wald",)

    def test_from_payload_reps_alias_and_defaults(self):
        request = StudyRequest.from_payload({"reps": 7})
        assert request.repetitions == 7
        assert request.datasets == ("NELL",)

    def test_from_payload_rejects_unknown_fields(self):
        with pytest.raises(ValidationError, match="repetitionz"):
            StudyRequest.from_payload({"repetitionz": 2})

    def test_rejects_empty_grid_and_unknown_strategy(self):
        with pytest.raises(ReproError, match="at least one"):
            StudyRequest(datasets="")
        with pytest.raises(ReproError, match="unknown strategy"):
            StudyRequest(strategies="srs,quantum")

    def test_payload_round_trip(self):
        request = StudyRequest.from_payload(dict(GRID))
        assert StudyRequest.from_payload(request.to_payload()) == request

    def test_build_plan_matches_cli_construction(self):
        plan = StudyRequest(
            datasets="NELL,YAGO", strategies="srs,twcs", methods="wald", m=3
        ).build_plan()
        assert [cell.label for cell in plan.cells] == [
            "NELL/srs/wald", "NELL/twcs/wald",
            "YAGO/srs/wald", "YAGO/twcs/wald",
        ]
        # One seed stream per (dataset, strategy), methods paired on it.
        assert [cell.seed_stream for cell in plan.cells] == [
            (20_000,), (20_001,), (20_010,), (20_011,)
        ]
        assert plan.cells[1].strategy == "TWCS:3"


class TestParseAddress:
    def test_forms(self):
        assert parse_address("/tmp/x.sock") == ("unix", "/tmp/x.sock")
        assert parse_address("127.0.0.1:9") == ("tcp", ("127.0.0.1", 9))
        assert parse_address("9") == ("tcp", ("127.0.0.1", 9))
        assert parse_address(("localhost", 9)) == ("tcp", ("localhost", 9))
        assert parse_address(("unix", "/x")) == ("unix", "/x")

    def test_rejects_garbage(self):
        with pytest.raises(ValidationError):
            parse_address("")
        with pytest.raises(ValidationError):
            parse_address(("a", "b", "c"))

    def test_connect_timeout_names_the_endpoint(self, tmp_path):
        from repro.runtime.service.client import connect

        with pytest.raises(ReproError, match="could not reach"):
            connect(str(tmp_path / "nowhere.sock"), timeout=0.2)


class TestTwoContextStoreConcurrency:
    def test_concurrent_contexts_share_one_store(self, tmp_path):
        # Two differently-configured immutable contexts, one store dir,
        # executing at the same time in one process: both runs must
        # succeed, agree bit-for-bit, and land their cells in the
        # shared store without tripping over each other's tmp files.
        store = tmp_path / "cache"
        contexts = [
            RunContext(workers=1, store=store, backend="serial"),
            RunContext(workers=2, store=store, backend="process", chunk_size=2),
        ]
        plan = StudyRequest.from_payload(dict(GRID)).build_plan()
        with ThreadPoolExecutor(max_workers=2) as pool:
            outcomes = list(
                pool.map(lambda ctx: execute(plan, context=ctx), contexts)
            )
        tables = {render_study_table(plan, outcome) for outcome in outcomes}
        assert len(tables) == 1  # bit-identical across contexts
        assert len(ResultStore(store)) == len(plan.cells)
        # A third context reads everything back from the shared store.
        rerun = execute(plan, context=RunContext(store=store))
        assert rerun.cache_hits == len(plan.cells)


class TestServiceRequests:
    def test_concurrent_contexts_bit_identical_and_cache_shared(
        self, tmp_path, capsys
    ):
        expected = standalone_table(capsys)
        with running_service(tmp_path, store=tmp_path / "cache") as svc:
            contexts = [
                {"backend": "serial"},
                {"backend": "process", "workers": 2, "chunk_size": 2},
            ]
            with ThreadPoolExecutor(max_workers=2) as pool:
                done = list(
                    pool.map(
                        lambda ctx: submit_request(svc.address, GRID, ctx),
                        contexts,
                    )
                )
            assert [event["event"] for event in done] == ["done", "done"]
            assert {event["table"] for event in done} == {expected}
            assert {event["exit_code"] for event in done} == {0}
            # The grid ran concurrently under two contexts; every cell
            # is now in the shared store, so a third differently-
            # configured request is served entirely from cache.
            third = submit_request(
                svc.address, GRID, {"backend": "serial", "max_retries": 1}
            )
            assert third["table"] == expected
            assert third["cache_hits"] == third["cells"] == 2

    def test_progress_events_stream_per_request(self, tmp_path):
        with running_service(tmp_path) as svc:
            events = []
            done = submit_request(svc.address, GRID, on_event=events.append)
            kinds = [event["event"] for event in events]
            assert kinds[0] == "accepted"
            assert kinds[-1] == "done"
            progress = [e for e in events if e["event"] == "progress"]
            assert len(progress) == done["cells"] == 2
            assert progress[-1]["done"] == progress[-1]["total"] == 2
            assert {e["id"] for e in events} == {done["id"]}

    def test_failing_request_does_not_poison_siblings(self, tmp_path, capsys):
        expected = standalone_table(capsys)
        bad = dict(GRID, datasets="NOPE")
        with running_service(tmp_path, store=tmp_path / "cache") as svc:
            with ThreadPoolExecutor(max_workers=2) as pool:
                futures = [
                    pool.submit(submit_request, svc.address, bad),
                    pool.submit(submit_request, svc.address, GRID),
                ]
                events = [future.result() for future in futures]
            by_kind = {event["event"]: event for event in events}
            assert set(by_kind) == {"failed", "done"}
            assert "NOPE" in by_kind["failed"]["error"]
            assert by_kind["done"]["table"] == expected
            # The service is still healthy: next request runs from cache.
            after = submit_request(svc.address, GRID)
            assert after["event"] == "done"
            assert after["cache_hits"] == after["cells"]
            status = service_status(svc.address)
            states = {
                record["id"]: record["status"]
                for record in status["requests"]
            }
            assert sorted(states.values()) == ["done", "done", "failed"]

    def test_per_request_trace_journals(self, tmp_path):
        from repro.runtime.telemetry import read_journal

        with running_service(
            tmp_path, store=tmp_path / "cache", trace_dir=tmp_path / "traces"
        ) as svc:
            first = submit_request(svc.address, GRID)
            second = submit_request(svc.address, GRID)
        journals = sorted((tmp_path / "traces").glob("*.jsonl"))
        assert [path.stem for path in journals] == [first["id"], second["id"]]
        for path, event in zip(journals, (first, second)):
            assert event["trace"] == str(path)
            records = read_journal(path)  # schema-valid, one run each
            assert {record["run_id"] for record in records}

    def test_ping_and_status(self, tmp_path):
        with running_service(tmp_path, store=tmp_path / "cache") as svc:
            pong = ping_service(svc.address)
            assert pong["event"] == "pong"
            assert pong["requests"] == 0
            assert pong["store"].endswith("cache")
            submit_request(svc.address, GRID)
            record = service_status(svc.address)["requests"][0]
            assert record["status"] == "done"
            assert record["request"]["repetitions"] == 4
            assert record["context"]["workers"] >= 1
            assert record["seconds"] is not None

    def test_validation_errors_come_back_as_error_events(self, tmp_path):
        with running_service(tmp_path) as svc:
            with pytest.raises(ReproError, match="repetitionz"):
                submit_request(svc.address, {"repetitionz": 3})
            with pytest.raises(ReproError, match="store"):
                submit_request(svc.address, GRID, {"store": "/elsewhere"})
            with pytest.raises(ReproError, match="workers"):
                submit_request(svc.address, GRID, {"workers": 0})

    def test_malformed_lines_keep_the_connection_alive(self, tmp_path):
        with running_service(tmp_path) as svc:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.connect(str(svc.socket_path))
            try:
                stream = sock.makefile("r", encoding="utf-8")
                sock.sendall(b"this is not json\n")
                assert "bad JSON" in json.loads(stream.readline())["error"]
                sock.sendall(b'["a", "list"]\n')
                assert "JSON object" in json.loads(stream.readline())["error"]
                sock.sendall(b'{"op": "frobnicate"}\n')
                assert "unknown op" in json.loads(stream.readline())["error"]
                sock.sendall(b'{"op": "ping"}\n')  # still serving
                assert json.loads(stream.readline())["event"] == "pong"
            finally:
                sock.close()

    def test_tcp_endpoint(self, tmp_path):
        service = AuditService(quiet=True)
        loop = asyncio.new_event_loop()
        ready = loop.create_future()
        thread = threading.Thread(
            target=lambda: loop.run_until_complete(
                service.serve(port=0, ready=ready)
            ),
            daemon=True,
        )
        thread.start()
        deadline = time.monotonic() + 10
        while not ready.done():
            assert time.monotonic() < deadline
            time.sleep(0.01)
        host, port = service.address[1]
        address = f"{host}:{port}"
        assert ping_service(address)["event"] == "pong"
        done = submit_request(address, GRID)
        assert done["event"] == "done"
        shutdown_service(address)
        thread.join(timeout=10)
        assert not thread.is_alive()


# ----------------------------------------------------------------------
# Cross-request solve batching
# ----------------------------------------------------------------------

import multiprocessing
import os
import pickle

from hypothesis import given, settings as hyp_settings
from hypothesis import strategies as st

from repro.estimators.base import Evidence
from repro.intervals import (
    AdaptiveHPD,
    ETCredibleInterval,
    HPDCredibleInterval,
    WaldInterval,
    WilsonInterval,
    use_solve_pool,
)
from repro.runtime import SolveBroker
from repro.runtime.telemetry import (
    MetricsAggregate,
    RunTelemetry,
    read_journal,
    replay_metrics,
)

BROKER_METHODS = (
    WaldInterval(),
    WilsonInterval(),
    ETCredibleInterval(),
    HPDCredibleInterval(),
    AdaptiveHPD(),
)

caller_schedules = st.lists(
    st.tuples(
        st.integers(0, len(BROKER_METHODS) - 1),  # method
        st.sampled_from([0.10, 0.05, 0.01]),  # alpha
        st.lists(  # evidence segment
            st.tuples(st.integers(0, 20), st.integers(1, 20)).map(
                lambda pair: (min(pair), max(max(pair), 1))
            ),
            min_size=1,
            max_size=5,
        ),
        st.integers(0, 3),  # start-delay bucket (ms)
    ),
    min_size=1,
    max_size=5,
)


class TestSolveBroker:
    @given(schedule=caller_schedules, window_ms=st.sampled_from([0, 5, 50]))
    @hyp_settings(max_examples=20, deadline=None)
    def test_any_interleaving_is_bit_identical_to_standalone(
        self, schedule, window_ms
    ):
        # The tentpole acceptance bar: whatever the window, the caller
        # mix, and the arrival interleaving, every caller's slice of a
        # brokered solve is byte-identical to running compute_batch
        # alone — bounds, labels, and metadata.
        callers = [
            (
                BROKER_METHODS[method_index],
                alpha,
                [Evidence.from_counts_fast(tau, n) for tau, n in segment],
                delay_ms,
            )
            for method_index, alpha, segment, delay_ms in schedule
        ]
        standalone = [
            method.compute_batch(evidences, alpha)
            for method, alpha, evidences, _ in callers
        ]
        broker = SolveBroker(window=window_ms / 1000.0, max_batch=64)
        channels = [broker.channel() for _ in callers]
        for channel in channels:
            channel.__enter__()
        barrier = threading.Barrier(len(callers))
        results: list = [None] * len(callers)

        def work(index):
            method, alpha, evidences, delay_ms = callers[index]
            barrier.wait()
            time.sleep(delay_ms / 1000.0)
            with use_solve_pool(channels[index]):
                results[index] = method.solve_batch(evidences, alpha)

        threads = [
            threading.Thread(target=work, args=(index,))
            for index in range(len(callers))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for channel in channels:
            channel.__exit__(None, None, None)
        broker.close()
        for got, want in zip(results, standalone):
            assert got.lower.tobytes() == want.lower.tobytes()
            assert got.upper.tobytes() == want.upper.tobytes()
            assert got.alpha == want.alpha
            assert got.method == want.method
            assert got.labels == want.labels

    def test_coalesces_and_journals_on_each_callers_own_bus(self):
        # Deterministic coalescing: both participants attached before
        # either solves, so the all-waiting trigger flushes the pair as
        # ONE batch well inside the (huge) window — and each caller
        # reports the shared flush on its own telemetry bus.
        method = WilsonInterval()
        segments = [
            [Evidence.from_counts_fast(3, 10)],
            [Evidence.from_counts_fast(7, 12), Evidence.from_counts_fast(0, 5)],
        ]
        broker = SolveBroker(window=30.0, max_batch=64)
        buses = [RunTelemetry(), RunTelemetry()]
        aggregates = [MetricsAggregate(), MetricsAggregate()]
        for bus, aggregate in zip(buses, aggregates):
            bus.subscribe(aggregate)
        channels = [broker.channel(bus) for bus in buses]
        for channel in channels:
            channel.__enter__()
        barrier = threading.Barrier(2)
        results: list = [None, None]

        def work(index):
            barrier.wait()
            with use_solve_pool(channels[index]):
                results[index] = method.solve_batch(segments[index], 0.05)

        threads = [
            threading.Thread(target=work, args=(index,)) for index in (0, 1)
        ]
        start = time.monotonic()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.monotonic() - start
        for channel in channels:
            channel.__exit__(None, None, None)
        broker.close()
        assert elapsed < 5.0  # all-waiting beat the 30 s window
        assert broker.flushes == 1
        assert broker.coalesced_flushes == 1
        assert broker.rows_solved == 3
        for index, aggregate in enumerate(aggregates):
            assert aggregate.solve_flushes == 1
            assert aggregate.solve_max_callers == 2
            assert aggregate.solve_rows == len(segments[index])
            batching = aggregate.as_dict()["solve_batching"]
            assert batching["coalesced_flushes"] == 1
        for index, batch in enumerate(results):
            alone = method.compute_batch(segments[index], 0.05)
            assert batch.lower.tobytes() == alone.lower.tobytes()
            assert batch.upper.tobytes() == alone.upper.tobytes()

    def test_max_batch_flushes_without_waiting_for_the_window(self):
        broker = SolveBroker(window=30.0, max_batch=2)
        method = WaldInterval()
        results: list = [None, None]

        def work(index):
            # No attach: the all-waiting trigger stays dormant, so only
            # max_batch can flush before the 30 s window.
            channel = broker.channel()
            with use_solve_pool(channel):
                results[index] = method.solve_batch(
                    [Evidence.from_counts_fast(index + 1, 9)], 0.05
                )

        threads = [
            threading.Thread(target=work, args=(index,)) for index in (0, 1)
        ]
        start = time.monotonic()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert time.monotonic() - start < 5.0
        assert broker.flushes == 1
        assert broker.coalesced_flushes == 1
        broker.close()

    def test_closed_broker_computes_directly(self):
        broker = SolveBroker(window=5.0)
        broker.close()
        method = WilsonInterval()
        evidences = [Evidence.from_counts_fast(4, 9)]
        with use_solve_pool(broker.channel()):
            routed = method.solve_batch(evidences, 0.05)
        direct = method.compute_batch(evidences, 0.05)
        assert routed.lower.tobytes() == direct.lower.tobytes()
        assert broker.flushes == 0

    def test_forked_children_never_wait_on_an_inherited_broker(self):
        # Regression: the fork-start process pool clones the submitting
        # thread — installed channel, broker lock, and PENDING GROUPS
        # included.  A forked worker solving the same (method, alpha)
        # used to join the copied group as a follower and wait forever
        # for a leader thread that only exists in the parent.  The
        # broker now detects the foreign pid and computes directly.
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("needs the fork start method")
        mp = multiprocessing.get_context("fork")
        method = WilsonInterval()
        evidences = [Evidence.from_counts_fast(4, 11)]
        broker = SolveBroker(window=30.0, max_batch=64)
        channels = [broker.channel(), broker.channel()]
        for channel in channels:
            channel.__enter__()
        started = threading.Event()

        def pending_leader():
            # One of two participants solving => below the all-waiting
            # trigger, so this group stays pending for the full window.
            with use_solve_pool(channels[0]):
                started.set()
                method.solve_batch([Evidence.from_counts_fast(1, 7)], 0.05)

        leader = threading.Thread(target=pending_leader, daemon=True)
        leader.start()
        assert started.wait(5)
        time.sleep(0.2)  # leader is now parked on the 30 s window
        queue = mp.SimpleQueue()

        def child():
            batch = method.solve_batch(evidences, 0.05)
            queue.put((batch.lower.tobytes(), batch.upper.tobytes()))

        with use_solve_pool(channels[1]):
            proc = mp.Process(target=child)  # forks THIS thread's context
            proc.start()
        proc.join(timeout=30)
        if proc.is_alive():
            proc.kill()
            pytest.fail("forked child hung on the inherited broker copy")
        got = queue.get()
        broker.close()
        leader.join(timeout=10)
        for channel in channels:
            channel.__exit__(None, None, None)
        alone = method.compute_batch(evidences, 0.05)
        assert got == (alone.lower.tobytes(), alone.upper.tobytes())

    def test_a_bad_segment_fails_only_its_own_caller(self):
        # One caller pools garbage evidence; its batch-mate must still
        # get its (bit-identical) result and only the bad caller raise.
        broker = SolveBroker(window=30.0, max_batch=64)
        method = HPDCredibleInterval()
        good = [Evidence.from_counts_fast(5, 12)]
        bad = ["not evidence"]  # poisons the pooled flush for this caller
        channels = [broker.channel(), broker.channel()]
        for channel in channels:
            channel.__enter__()
        barrier = threading.Barrier(2)
        outcomes: dict = {}

        def work(name, segment):
            barrier.wait()
            channel = channels[0] if name == "good" else channels[1]
            with use_solve_pool(channel):
                try:
                    outcomes[name] = method.solve_batch(segment, 0.05)
                except Exception as exc:
                    outcomes[name] = exc

        threads = [
            threading.Thread(target=work, args=("good", good)),
            threading.Thread(target=work, args=("bad", bad)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for channel in channels:
            channel.__exit__(None, None, None)
        broker.close()
        assert isinstance(outcomes["bad"], Exception)
        alone = method.compute_batch(good, 0.05)
        assert outcomes["good"].lower.tobytes() == alone.lower.tobytes()


def store_values(root) -> dict:
    """Cache state as {relative path: serialised value payload}, with
    the volatile wall-clock ``seconds`` field excluded.  Only ``.pkl``
    entries are cache state — solve-table ``.npy`` sidecars beside them
    are rebuildable memoisation, not results."""
    values = {}
    for path in sorted(root.rglob("*.pkl")):
        if not path.is_file():
            continue
        with path.open("rb") as handle:
            payload = pickle.load(handle)
        values[str(path.relative_to(root))] = pickle.dumps(
            {"value": payload["value"], "label": payload["label"]},
            protocol=pickle.HIGHEST_PROTOCOL,
        )
    return values


class TestServiceSolveBatching:
    def test_concurrent_requests_batch_solves_and_stay_bit_identical(
        self, tmp_path, capsys
    ):
        # Standalone reference: same grid, batching disabled, own store.
        plan = StudyRequest.from_payload(dict(GRID)).build_plan()
        alone_store = tmp_path / "alone"
        alone = execute(
            plan,
            context=RunContext(store=alone_store, backend="serial"),
        )
        expected = render_study_table(plan, alone)
        service_store = tmp_path / "shared"
        with running_service(
            tmp_path,
            store=service_store,
            trace_dir=tmp_path / "traces",
            solve_batch_window=0.25,
        ) as svc:
            with ThreadPoolExecutor(max_workers=3) as pool:
                done = list(
                    pool.map(
                        lambda _: submit_request(
                            svc.address, GRID, {"backend": "serial"}
                        ),
                        range(3),
                    )
                )
            pong = ping_service(svc.address)
        assert [event["event"] for event in done] == ["done"] * 3
        # Tables byte-identical to the standalone, unbatched run.
        assert {event["table"] for event in done} == {expected}
        # Cache state byte-identical: same tokens, same value payloads.
        assert store_values(service_store) == store_values(alone_store)
        # The shared broker actually coalesced under concurrent load:
        # service-wide stats plus per-request journal events agree.
        batching = pong["solve_batching"]
        assert batching["flushes"] > 0
        assert batching["coalesced_flushes"] > 0
        flush_events = []
        for journal in (tmp_path / "traces").glob("*.jsonl"):
            flush_events += [
                record
                for record in read_journal(journal)
                if record["event"] == "solve_batch_flush"
            ]
        assert flush_events
        assert max(record["callers"] for record in flush_events) >= 2
        # Replayed journal metrics surface the same coalescing.
        replayed = replay_metrics(
            read_journal(next(iter((tmp_path / "traces").glob("*.jsonl"))))
        )
        assert replayed.as_dict()["solve_batching"]["flushes"] > 0

    def test_window_zero_disables_the_broker(self, tmp_path):
        with running_service(
            tmp_path, store=tmp_path / "cache", solve_batch_window=0.0
        ) as svc:
            assert svc.service.solve_broker is None
            done = submit_request(svc.address, GRID)
            assert done["event"] == "done"
            assert ping_service(svc.address)["solve_batching"] is None


# ----------------------------------------------------------------------
# Service-hardening regressions (PR 9 bugfix sweep)
# ----------------------------------------------------------------------


class TestServiceHardening:
    def test_client_disconnect_mid_request_finalises_the_record(
        self, tmp_path
    ):
        # Regression: a client hanging up after `accepted` used to raise
        # ConnectionResetError out of the progress send, abandoning the
        # executor future and leaving the record stuck at "running".
        with running_service(tmp_path, store=tmp_path / "cache") as svc:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.connect(str(svc.socket_path))
            try:
                sock.sendall(
                    json.dumps({"op": "submit", "request": GRID}).encode()
                    + b"\n"
                )
                stream = sock.makefile("r", encoding="utf-8")
                accepted = json.loads(stream.readline())
                assert accepted["event"] == "accepted"
            finally:
                sock.close()  # hang up mid-request
            deadline = time.monotonic() + 30
            while True:
                states = {
                    record["id"]: record
                    for record in service_status(svc.address)["requests"]
                }
                record = states[accepted["id"]]
                if record["status"] != "running" and record["status"] != "queued":
                    break
                assert time.monotonic() < deadline, "record stuck at running"
                time.sleep(0.05)
            assert record["status"] == "done"
            assert record["seconds"] is not None
            # The request's work survived the disconnect: a follow-up
            # submit is served from the shared store.
            after = submit_request(svc.address, GRID)
            assert after["event"] == "done"
            assert after["cache_hits"] == after["cells"]

    def test_defaults_trace_file_fans_out_per_request(self, tmp_path):
        # Regression: with no --trace-dir but a defaults trace file,
        # concurrent requests all appended to the SAME journal from
        # different threads, interleaving their events.  Each request
        # now journals to a request-id-suffixed sibling.
        base = tmp_path / "journal.jsonl"
        with running_service(
            tmp_path,
            store=tmp_path / "cache",
            defaults=RunContext(trace=base),
        ) as svc:
            with ThreadPoolExecutor(max_workers=2) as pool:
                done = list(
                    pool.map(
                        lambda _: submit_request(svc.address, GRID), range(2)
                    )
                )
        assert [event["event"] for event in done] == ["done", "done"]
        traces = sorted(event["trace"] for event in done)
        assert len(set(traces)) == 2
        assert not base.exists()  # nobody wrote the shared path
        for trace in traces:
            assert trace != str(base)
            records = read_journal(trace)  # parses cleanly => no tearing
            assert len({record["run_id"] for record in records}) == 1
            assert records[0]["event"] == "run_start"
            assert records[-1]["event"] == "run_finish"

    def test_unix_connect_retries_do_not_leak_fds(self, tmp_path):
        from repro.runtime.service.client import connect

        missing = str(tmp_path / "nowhere.sock")
        fd_dir = "/proc/self/fd"
        if not os.path.isdir(fd_dir):  # pragma: no cover - non-linux
            pytest.skip("needs /proc to count open fds")
        with pytest.raises(ReproError):
            connect(missing, timeout=0.3)  # warm any lazy imports
        before = len(os.listdir(fd_dir))
        with pytest.raises(ReproError):
            connect(missing, timeout=0.5)  # ~10 failed attempts
        after = len(os.listdir(fd_dir))
        assert after <= before + 1  # was: one leaked fd per attempt

    def test_parse_address_wraps_bad_ports_as_validation_errors(self):
        with pytest.raises(ValidationError, match="port"):
            parse_address("localhost:notaport")
        with pytest.raises(ValidationError, match="port"):
            parse_address("notaport")
