"""Tests for the audit service: requests, concurrency, cache sharing.

The service promises three things worth testing hard: a request
submitted over the wire is *byte-identical* to the same grid run
standalone (shared StudyRequest code path), concurrent requests with
different RunContexts share one ResultStore (cache hits cross
requests), and one request failing never poisons its siblings.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.cli import main as cli_main
from repro.exceptions import ReproError, ValidationError
from repro.runtime import ResultStore, execute
from repro.runtime.service import (
    AuditService,
    StudyRequest,
    parse_address,
    ping_service,
    render_study_table,
    service_status,
    shutdown_service,
    submit_request,
)
from repro.runtime.settings import RunContext

GRID = {
    "datasets": "NELL",
    "strategies": "srs",
    "methods": "wald,wilson",
    "repetitions": 4,
}
GRID_ARGS = [
    "--datasets", "NELL", "--strategies", "srs",
    "--methods", "wald,wilson", "--reps", "4",
]


def standalone_table(capsys, extra=()) -> str:
    """The table `python -m repro study` prints for GRID (summary line
    stripped — it carries volatile wall-clock seconds)."""
    assert cli_main(["study", *GRID_ARGS, "--quiet", *extra]) == 0
    out = capsys.readouterr().out
    return "\n".join(out.splitlines()[:-1])


class running_service:
    """Context manager: an AuditService on a unix socket, in a thread."""

    def __init__(self, tmp_path, **kwargs):
        self.socket_path = tmp_path / "svc.sock"
        kwargs.setdefault("quiet", True)
        self.service = AuditService(**kwargs)
        self.thread = None

    def __enter__(self):
        loop = asyncio.new_event_loop()
        ready = loop.create_future()
        self.thread = threading.Thread(
            target=lambda: loop.run_until_complete(
                self.service.serve(socket_path=self.socket_path, ready=ready)
            ),
            daemon=True,
        )
        self.thread.start()
        deadline = time.monotonic() + 10
        while not ready.done():
            assert time.monotonic() < deadline, "service did not start"
            time.sleep(0.01)
        return self

    @property
    def address(self):
        return ("unix", str(self.socket_path))

    def __exit__(self, *exc):
        try:
            shutdown_service(self.address)
        except ReproError:
            pass
        self.thread.join(timeout=10)
        assert not self.thread.is_alive()


class TestStudyRequest:
    def test_normalises_names_and_folds_case(self):
        request = StudyRequest(
            datasets="nell, yago", strategies=("SRS",), methods="Wald"
        )
        assert request.datasets == ("NELL", "YAGO")
        assert request.strategies == ("srs",)
        assert request.methods == ("wald",)

    def test_from_payload_reps_alias_and_defaults(self):
        request = StudyRequest.from_payload({"reps": 7})
        assert request.repetitions == 7
        assert request.datasets == ("NELL",)

    def test_from_payload_rejects_unknown_fields(self):
        with pytest.raises(ValidationError, match="repetitionz"):
            StudyRequest.from_payload({"repetitionz": 2})

    def test_rejects_empty_grid_and_unknown_strategy(self):
        with pytest.raises(ReproError, match="at least one"):
            StudyRequest(datasets="")
        with pytest.raises(ReproError, match="unknown strategy"):
            StudyRequest(strategies="srs,quantum")

    def test_payload_round_trip(self):
        request = StudyRequest.from_payload(dict(GRID))
        assert StudyRequest.from_payload(request.to_payload()) == request

    def test_build_plan_matches_cli_construction(self):
        plan = StudyRequest(
            datasets="NELL,YAGO", strategies="srs,twcs", methods="wald", m=3
        ).build_plan()
        assert [cell.label for cell in plan.cells] == [
            "NELL/srs/wald", "NELL/twcs/wald",
            "YAGO/srs/wald", "YAGO/twcs/wald",
        ]
        # One seed stream per (dataset, strategy), methods paired on it.
        assert [cell.seed_stream for cell in plan.cells] == [
            (20_000,), (20_001,), (20_010,), (20_011,)
        ]
        assert plan.cells[1].strategy == "TWCS:3"


class TestParseAddress:
    def test_forms(self):
        assert parse_address("/tmp/x.sock") == ("unix", "/tmp/x.sock")
        assert parse_address("127.0.0.1:9") == ("tcp", ("127.0.0.1", 9))
        assert parse_address("9") == ("tcp", ("127.0.0.1", 9))
        assert parse_address(("localhost", 9)) == ("tcp", ("localhost", 9))
        assert parse_address(("unix", "/x")) == ("unix", "/x")

    def test_rejects_garbage(self):
        with pytest.raises(ValidationError):
            parse_address("")
        with pytest.raises(ValidationError):
            parse_address(("a", "b", "c"))

    def test_connect_timeout_names_the_endpoint(self, tmp_path):
        from repro.runtime.service.client import connect

        with pytest.raises(ReproError, match="could not reach"):
            connect(str(tmp_path / "nowhere.sock"), timeout=0.2)


class TestTwoContextStoreConcurrency:
    def test_concurrent_contexts_share_one_store(self, tmp_path):
        # Two differently-configured immutable contexts, one store dir,
        # executing at the same time in one process: both runs must
        # succeed, agree bit-for-bit, and land their cells in the
        # shared store without tripping over each other's tmp files.
        store = tmp_path / "cache"
        contexts = [
            RunContext(workers=1, store=store, backend="serial"),
            RunContext(workers=2, store=store, backend="process", chunk_size=2),
        ]
        plan = StudyRequest.from_payload(dict(GRID)).build_plan()
        with ThreadPoolExecutor(max_workers=2) as pool:
            outcomes = list(
                pool.map(lambda ctx: execute(plan, context=ctx), contexts)
            )
        tables = {render_study_table(plan, outcome) for outcome in outcomes}
        assert len(tables) == 1  # bit-identical across contexts
        assert len(ResultStore(store)) == len(plan.cells)
        # A third context reads everything back from the shared store.
        rerun = execute(plan, context=RunContext(store=store))
        assert rerun.cache_hits == len(plan.cells)


class TestServiceRequests:
    def test_concurrent_contexts_bit_identical_and_cache_shared(
        self, tmp_path, capsys
    ):
        expected = standalone_table(capsys)
        with running_service(tmp_path, store=tmp_path / "cache") as svc:
            contexts = [
                {"backend": "serial"},
                {"backend": "process", "workers": 2, "chunk_size": 2},
            ]
            with ThreadPoolExecutor(max_workers=2) as pool:
                done = list(
                    pool.map(
                        lambda ctx: submit_request(svc.address, GRID, ctx),
                        contexts,
                    )
                )
            assert [event["event"] for event in done] == ["done", "done"]
            assert {event["table"] for event in done} == {expected}
            assert {event["exit_code"] for event in done} == {0}
            # The grid ran concurrently under two contexts; every cell
            # is now in the shared store, so a third differently-
            # configured request is served entirely from cache.
            third = submit_request(
                svc.address, GRID, {"backend": "serial", "max_retries": 1}
            )
            assert third["table"] == expected
            assert third["cache_hits"] == third["cells"] == 2

    def test_progress_events_stream_per_request(self, tmp_path):
        with running_service(tmp_path) as svc:
            events = []
            done = submit_request(svc.address, GRID, on_event=events.append)
            kinds = [event["event"] for event in events]
            assert kinds[0] == "accepted"
            assert kinds[-1] == "done"
            progress = [e for e in events if e["event"] == "progress"]
            assert len(progress) == done["cells"] == 2
            assert progress[-1]["done"] == progress[-1]["total"] == 2
            assert {e["id"] for e in events} == {done["id"]}

    def test_failing_request_does_not_poison_siblings(self, tmp_path, capsys):
        expected = standalone_table(capsys)
        bad = dict(GRID, datasets="NOPE")
        with running_service(tmp_path, store=tmp_path / "cache") as svc:
            with ThreadPoolExecutor(max_workers=2) as pool:
                futures = [
                    pool.submit(submit_request, svc.address, bad),
                    pool.submit(submit_request, svc.address, GRID),
                ]
                events = [future.result() for future in futures]
            by_kind = {event["event"]: event for event in events}
            assert set(by_kind) == {"failed", "done"}
            assert "NOPE" in by_kind["failed"]["error"]
            assert by_kind["done"]["table"] == expected
            # The service is still healthy: next request runs from cache.
            after = submit_request(svc.address, GRID)
            assert after["event"] == "done"
            assert after["cache_hits"] == after["cells"]
            status = service_status(svc.address)
            states = {
                record["id"]: record["status"]
                for record in status["requests"]
            }
            assert sorted(states.values()) == ["done", "done", "failed"]

    def test_per_request_trace_journals(self, tmp_path):
        from repro.runtime.telemetry import read_journal

        with running_service(
            tmp_path, store=tmp_path / "cache", trace_dir=tmp_path / "traces"
        ) as svc:
            first = submit_request(svc.address, GRID)
            second = submit_request(svc.address, GRID)
        journals = sorted((tmp_path / "traces").glob("*.jsonl"))
        assert [path.stem for path in journals] == [first["id"], second["id"]]
        for path, event in zip(journals, (first, second)):
            assert event["trace"] == str(path)
            records = read_journal(path)  # schema-valid, one run each
            assert {record["run_id"] for record in records}

    def test_ping_and_status(self, tmp_path):
        with running_service(tmp_path, store=tmp_path / "cache") as svc:
            pong = ping_service(svc.address)
            assert pong["event"] == "pong"
            assert pong["requests"] == 0
            assert pong["store"].endswith("cache")
            submit_request(svc.address, GRID)
            record = service_status(svc.address)["requests"][0]
            assert record["status"] == "done"
            assert record["request"]["repetitions"] == 4
            assert record["context"]["workers"] >= 1
            assert record["seconds"] is not None

    def test_validation_errors_come_back_as_error_events(self, tmp_path):
        with running_service(tmp_path) as svc:
            with pytest.raises(ReproError, match="repetitionz"):
                submit_request(svc.address, {"repetitionz": 3})
            with pytest.raises(ReproError, match="store"):
                submit_request(svc.address, GRID, {"store": "/elsewhere"})
            with pytest.raises(ReproError, match="workers"):
                submit_request(svc.address, GRID, {"workers": 0})

    def test_malformed_lines_keep_the_connection_alive(self, tmp_path):
        with running_service(tmp_path) as svc:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.connect(str(svc.socket_path))
            try:
                stream = sock.makefile("r", encoding="utf-8")
                sock.sendall(b"this is not json\n")
                assert "bad JSON" in json.loads(stream.readline())["error"]
                sock.sendall(b'["a", "list"]\n')
                assert "JSON object" in json.loads(stream.readline())["error"]
                sock.sendall(b'{"op": "frobnicate"}\n')
                assert "unknown op" in json.loads(stream.readline())["error"]
                sock.sendall(b'{"op": "ping"}\n')  # still serving
                assert json.loads(stream.readline())["event"] == "pong"
            finally:
                sock.close()

    def test_tcp_endpoint(self, tmp_path):
        service = AuditService(quiet=True)
        loop = asyncio.new_event_loop()
        ready = loop.create_future()
        thread = threading.Thread(
            target=lambda: loop.run_until_complete(
                service.serve(port=0, ready=ready)
            ),
            daemon=True,
        )
        thread.start()
        deadline = time.monotonic() + 10
        while not ready.done():
            assert time.monotonic() < deadline
            time.sleep(0.01)
        host, port = service.address[1]
        address = f"{host}:{port}"
        assert ping_service(address)["event"] == "pong"
        done = submit_request(address, GRID)
        assert done["event"] == "done"
        shutdown_service(address)
        thread.join(timeout=10)
        assert not thread.is_alive()
