"""Unit tests for the annotation ledger."""

from __future__ import annotations

import pytest

from repro.annotation.ledger import AnnotationLedger
from repro.exceptions import AnnotationError, ValidationError


class TestRecord:
    def test_counts_and_cost(self):
        ledger = AnnotationLedger()
        ledger.record(0, entity_id=10, label=True)
        ledger.record(1, entity_id=10, label=False)
        ledger.record(2, entity_id=11, label=True)
        assert ledger.num_triples == 3
        assert ledger.num_entities == 2
        assert ledger.num_correct == 2
        assert ledger.cost.seconds == 2 * 45 + 3 * 25

    def test_idempotent_re_record(self):
        ledger = AnnotationLedger()
        assert ledger.record(5, 1, True) is True
        assert ledger.record(5, 1, True) is False
        assert ledger.num_triples == 1

    def test_conflicting_label_raises(self):
        ledger = AnnotationLedger()
        ledger.record(5, 1, True)
        with pytest.raises(AnnotationError):
            ledger.record(5, 1, False)

    def test_new_entity_flag(self):
        ledger = AnnotationLedger()
        ledger.record(0, 7, True)
        ledger.record(1, 7, True)
        entries = list(ledger)
        assert entries[0].new_entity is True
        assert entries[1].new_entity is False

    def test_lookup(self):
        ledger = AnnotationLedger()
        ledger.record(3, 1, False)
        assert ledger.has_triple(3)
        assert not ledger.has_triple(4)
        assert ledger.label_of(3) is False
        with pytest.raises(AnnotationError):
            ledger.label_of(4)

    def test_record_batch(self):
        ledger = AnnotationLedger()
        added = ledger.record_batch([0, 1, 2, 0], [5, 5, 6, 5], [1, 0, 1, 1])
        assert added == 3
        assert ledger.num_triples == 3

    def test_record_batch_shape_mismatch(self):
        ledger = AnnotationLedger()
        with pytest.raises(ValidationError):
            ledger.record_batch([0, 1], [5], [True, False])


class TestPersistence:
    def test_round_trip(self, tmp_path):
        ledger = AnnotationLedger()
        ledger.record_batch([4, 9, 2], [1, 1, 2], [True, False, True])
        path = ledger.to_tsv(tmp_path / "ledger.tsv")
        resumed = AnnotationLedger.from_tsv(path)
        assert resumed.num_triples == 3
        assert resumed.num_entities == 2
        assert resumed.label_of(9) is False
        assert resumed.cost.seconds == ledger.cost.seconds

    def test_rejects_malformed(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("1\t2\n")
        with pytest.raises(ValidationError):
            AnnotationLedger.from_tsv(path)


class TestFrameworkIntegration:
    def test_ledger_tracks_evaluation(self, nell_kg):
        from repro.evaluation.framework import KGAccuracyEvaluator
        from repro.intervals.ahpd import AdaptiveHPD
        from repro.sampling.srs import SimpleRandomSampling

        ledger = AnnotationLedger()
        evaluator = KGAccuracyEvaluator(
            nell_kg, SimpleRandomSampling(), AdaptiveHPD(), ledger=ledger
        )
        result = evaluator.run(rng=0)
        assert ledger.num_triples == result.n_triples
        assert ledger.num_entities == result.n_entities
        assert ledger.cost.seconds == result.cost.seconds

    def test_ledger_accumulates_across_runs(self, nell_kg):
        from repro.evaluation.framework import KGAccuracyEvaluator
        from repro.intervals.wilson import WilsonInterval
        from repro.sampling.srs import SimpleRandomSampling

        ledger = AnnotationLedger()
        evaluator = KGAccuracyEvaluator(
            nell_kg, SimpleRandomSampling(), WilsonInterval(), ledger=ledger
        )
        first = evaluator.run(rng=0)
        after_first = ledger.num_triples
        evaluator.run(rng=1)
        # Overlapping draws across runs are recorded once.
        assert after_first == first.n_triples
        assert ledger.num_triples >= after_first
