"""Unit and property tests for the Beta distribution helpers."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.stats.beta import (
    BetaParameters,
    beta_cdf,
    beta_interval_mass,
    beta_mean,
    beta_mode,
    beta_pdf,
    beta_ppf,
    beta_skewness,
    beta_std,
    beta_variance,
)

positive_shapes = st.floats(min_value=0.05, max_value=500.0, allow_nan=False)


class TestBetaPdf:
    def test_uniform_density(self):
        assert beta_pdf(0.3, 1, 1) == pytest.approx(1.0)
        assert beta_pdf(0.9, 1, 1) == pytest.approx(1.0)

    def test_symmetric_peak_at_half(self):
        assert beta_pdf(0.5, 5, 5) > beta_pdf(0.3, 5, 5)

    def test_outside_support_is_zero(self):
        assert beta_pdf(-0.1, 2, 2) == 0.0
        assert beta_pdf(1.1, 2, 2) == 0.0

    def test_vectorised(self):
        out = beta_pdf(np.array([0.25, 0.5, 0.75]), 2, 2)
        assert out.shape == (3,)
        assert out[1] == pytest.approx(1.5)

    def test_known_value(self):
        # Beta(2, 2): f(x) = 6 x (1 - x).
        assert beta_pdf(0.25, 2, 2) == pytest.approx(6 * 0.25 * 0.75)

    def test_large_shapes_finite(self):
        assert math.isfinite(beta_pdf(0.9, 900.0, 100.0))

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValidationError):
            beta_pdf(0.5, 0.0, 1.0)

    @given(a=st.floats(1.0, 500.0), b=st.floats(1.0, 500.0))
    @settings(max_examples=60, deadline=None)
    def test_integrates_to_one(self, a, b):
        # Shapes >= 1 keep the density bounded, so the trapezoid rule
        # converges; singular shapes are covered via the CDF instead.
        xs = np.linspace(1e-6, 1 - 1e-6, 20_001)
        mass = np.trapezoid(beta_pdf(xs, a, b), xs)
        assert mass == pytest.approx(1.0, abs=2e-2)

    @given(a=positive_shapes, b=positive_shapes)
    @settings(max_examples=60, deadline=None)
    def test_total_mass_via_cdf(self, a, b):
        assert beta_cdf(1.0, a, b) == pytest.approx(1.0)
        assert beta_cdf(0.0, a, b) == pytest.approx(0.0)


class TestBetaCdf:
    def test_bounds(self):
        assert beta_cdf(0.0, 3, 4) == 0.0
        assert beta_cdf(1.0, 3, 4) == 1.0

    def test_clips_outside_support(self):
        assert beta_cdf(-5.0, 2, 2) == 0.0
        assert beta_cdf(5.0, 2, 2) == 1.0

    def test_uniform_is_identity(self):
        assert beta_cdf(0.37, 1, 1) == pytest.approx(0.37)

    @given(a=positive_shapes, b=positive_shapes, x=st.floats(0.01, 0.99))
    @settings(max_examples=80, deadline=None)
    def test_monotone(self, a, b, x):
        assert beta_cdf(x, a, b) <= beta_cdf(min(x + 0.01, 1.0), a, b) + 1e-12


class TestBetaPpf:
    @given(
        a=st.floats(min_value=1 / 3, max_value=500.0),
        b=st.floats(min_value=1 / 3, max_value=500.0),
        q=st.floats(0.001, 0.999),
    )
    @settings(max_examples=80, deadline=None)
    def test_inverts_cdf(self, a, b, q):
        # Shapes >= 1/3 cover every prior/posterior the library builds
        # (Kerman is the smallest); the round trip is tight there.
        x = beta_ppf(q, a, b)
        assert beta_cdf(x, a, b) == pytest.approx(q, abs=1e-9)

    @given(a=positive_shapes, b=positive_shapes, q=st.floats(0.01, 0.98))
    @settings(max_examples=60, deadline=None)
    def test_ppf_monotone_extreme_shapes(self, a, b, q):
        # Spike shapes (a or b << 1) make the q-space round trip
        # imprecise by design (the CDF is near-flat, then jumps); the
        # meaningful guarantee there is order preservation.
        x_lo = beta_ppf(q, a, b)
        x_hi = beta_ppf(min(q + 0.01, 0.999), a, b)
        assert 0.0 <= x_lo <= x_hi <= 1.0

    def test_rejects_bad_quantiles(self):
        with pytest.raises(ValidationError):
            beta_ppf(1.5, 2, 2)

    def test_median_of_symmetric(self):
        assert beta_ppf(0.5, 7, 7) == pytest.approx(0.5)


class TestMoments:
    def test_mean(self):
        assert beta_mean(2, 8) == pytest.approx(0.2)

    def test_variance_formula(self):
        a, b = 3.0, 5.0
        expected = a * b / ((a + b) ** 2 * (a + b + 1))
        assert beta_variance(a, b) == pytest.approx(expected)

    def test_std_is_sqrt_variance(self):
        assert beta_std(4, 6) == pytest.approx(math.sqrt(beta_variance(4, 6)))

    def test_skewness_sign(self):
        # Mass near 1 (a >> b): left tail, negative skew.
        assert beta_skewness(90, 10) < 0
        assert beta_skewness(10, 90) > 0
        assert beta_skewness(5, 5) == pytest.approx(0.0)


class TestBetaMode:
    def test_interior(self):
        assert beta_mode(3, 2) == pytest.approx(2 / 3)

    def test_monotone_decreasing(self):
        assert beta_mode(1.0, 5.0) == 0.0

    def test_monotone_increasing(self):
        assert beta_mode(5.0, 1.0) == 1.0

    def test_uniform_centre(self):
        assert beta_mode(1.0, 1.0) == 0.5

    def test_bathtub_centre_convention(self):
        assert beta_mode(0.5, 0.5) == 0.5

    @given(a=st.floats(1.01, 200), b=st.floats(1.01, 200))
    @settings(max_examples=60, deadline=None)
    def test_interior_mode_is_argmax(self, a, b):
        mode = beta_mode(a, b)
        peak = beta_pdf(mode, a, b)
        for offset in (-0.01, 0.01):
            x = mode + offset
            if 0 < x < 1:
                assert beta_pdf(x, a, b) <= peak + 1e-9


class TestIntervalMass:
    def test_full_interval(self):
        assert beta_interval_mass(0.0, 1.0, 3, 3) == pytest.approx(1.0)

    def test_rejects_inverted(self):
        with pytest.raises(ValidationError):
            beta_interval_mass(0.8, 0.2, 2, 2)

    def test_matches_cdf_difference(self):
        got = beta_interval_mass(0.2, 0.7, 4, 6)
        assert got == pytest.approx(beta_cdf(0.7, 4, 6) - beta_cdf(0.2, 4, 6))


class TestBetaParameters:
    def test_properties(self):
        params = BetaParameters(3, 2)
        assert params.mean == pytest.approx(0.6)
        assert params.mode == pytest.approx(2 / 3)
        assert params.is_unimodal_interior

    def test_symmetry_flag(self):
        assert BetaParameters(2, 2).is_symmetric
        assert not BetaParameters(2, 3).is_symmetric

    def test_rejects_invalid(self):
        with pytest.raises(ValidationError):
            BetaParameters(0, 1)
