"""Property-based tests of the paper's theorems (hypothesis).

The HPD theorems hold for *every* annotation outcome and prior; these
properties let hypothesis explore the space:

* Theorem 1 — minimality: no same-mass interval is shorter; in
  particular HPD width <= ET width.
* Theorem 2 — density dominance: every point inside the HPD interval
  has density >= any point outside (checked on a grid).
* Theorem 3 — symmetric equivalence with ET.
* Corollaries 1-2 — limiting cases are minimal.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.intervals.et import et_bounds
from repro.intervals.hpd import hpd_bounds
from repro.intervals.posterior import BetaPosterior
from repro.intervals.priors import JEFFREYS, KERMAN, UNIFORM, BetaPrior

PRIORS = (KERMAN, JEFFREYS, UNIFORM)

outcomes = st.tuples(
    st.integers(min_value=0, max_value=200),  # tau
    st.integers(min_value=1, max_value=200),  # n
).filter(lambda pair: pair[0] <= pair[1])

alphas = st.sampled_from([0.10, 0.05, 0.01])
prior_strategy = st.sampled_from(PRIORS)


@given(outcome=outcomes, alpha=alphas, prior=prior_strategy)
@settings(max_examples=150, deadline=None)
def test_hpd_mass_is_nominal(outcome, alpha, prior):
    tau, n = outcome
    post = BetaPosterior.from_counts(prior, tau, n)
    lower, upper = hpd_bounds(post, alpha)
    assert post.interval_mass(lower, upper) == pytest.approx(1 - alpha, abs=1e-6)


@given(outcome=outcomes, alpha=alphas, prior=prior_strategy)
@settings(max_examples=150, deadline=None)
def test_theorem1_hpd_never_wider_than_et(outcome, alpha, prior):
    tau, n = outcome
    post = BetaPosterior.from_counts(prior, tau, n)
    l_et, u_et = et_bounds(post, alpha)
    l_h, u_h = hpd_bounds(post, alpha)
    assert (u_h - l_h) <= (u_et - l_et) + 1e-7


@given(outcome=outcomes, alpha=alphas, prior=prior_strategy)
@settings(max_examples=100, deadline=None)
def test_theorem2_density_dominance(outcome, alpha, prior):
    tau, n = outcome
    post = BetaPosterior.from_counts(prior, tau, n)
    lower, upper = hpd_bounds(post, alpha)
    inside = np.linspace(lower + 1e-9, upper - 1e-9, 25)
    min_inside = float(np.min(post.pdf(inside)))
    outside_points = [x for x in np.linspace(0.001, 0.999, 41) if not lower <= x <= upper]
    if outside_points:
        max_outside = float(np.max(post.pdf(np.asarray(outside_points))))
        assert min_inside >= max_outside - 1e-6 * max(max_outside, 1.0)


@given(n=st.integers(1, 200), alpha=alphas)
@settings(max_examples=60, deadline=None)
def test_theorem3_symmetric_posterior_equals_et(n, alpha):
    # Uniform prior and a balanced outcome give a symmetric posterior.
    if n % 2 == 1:
        n += 1
    post = BetaPosterior.from_counts(UNIFORM, n // 2, n)
    assert post.is_symmetric
    l_et, u_et = et_bounds(post, alpha)
    l_h, u_h = hpd_bounds(post, alpha)
    assert l_h == pytest.approx(l_et, abs=1e-6)
    assert u_h == pytest.approx(u_et, abs=1e-6)


@given(n=st.integers(1, 300), alpha=alphas, prior=prior_strategy)
@settings(max_examples=80, deadline=None)
def test_corollary1_limiting_cases_minimal(n, alpha, prior):
    for tau in (0, n):
        post = BetaPosterior.from_counts(prior, tau, n)
        l_h, u_h = hpd_bounds(post, alpha)
        l_et, u_et = et_bounds(post, alpha)
        assert (u_h - l_h) <= (u_et - l_et) + 1e-9
        # Limiting-case bounds anchor at the boundary with the mass.
        if tau == 0:
            assert l_h == 0.0
        else:
            assert u_h == 1.0


@given(outcome=outcomes, prior=prior_strategy)
@settings(max_examples=100, deadline=None)
def test_nesting_in_alpha(outcome, prior):
    # Lower alpha (higher confidence) must give a wider HPD interval.
    tau, n = outcome
    post = BetaPosterior.from_counts(prior, tau, n)
    w_90 = np.diff(hpd_bounds(post, 0.10))[0]
    w_95 = np.diff(hpd_bounds(post, 0.05))[0]
    w_99 = np.diff(hpd_bounds(post, 0.01))[0]
    assert w_90 <= w_95 + 1e-9 <= w_99 + 2e-9


@given(
    outcome=outcomes,
    alpha=alphas,
    accuracy=st.floats(0.05, 0.95),
    strength=st.floats(2.0, 150.0),
)
@settings(max_examples=100, deadline=None)
def test_informative_priors_also_satisfy_theorems(outcome, alpha, accuracy, strength):
    tau, n = outcome
    prior = BetaPrior.from_accuracy(accuracy, strength)
    post = BetaPosterior.from_counts(prior, tau, n)
    lower, upper = hpd_bounds(post, alpha)
    assert 0.0 <= lower < upper <= 1.0
    assert post.interval_mass(lower, upper) == pytest.approx(1 - alpha, abs=1e-6)
    l_et, u_et = et_bounds(post, alpha)
    assert (upper - lower) <= (u_et - l_et) + 1e-7


@given(n=st.integers(2, 400))
@settings(max_examples=60, deadline=None)
def test_width_shrinks_with_sample_size(n):
    small = BetaPosterior.from_counts(JEFFREYS, round(0.9 * n), n)
    large = BetaPosterior.from_counts(JEFFREYS, round(0.9 * 4 * n), 4 * n)
    w_small = np.diff(hpd_bounds(small, 0.05))[0]
    w_large = np.diff(hpd_bounds(large, 0.05))[0]
    assert w_large < w_small + 1e-9


@given(
    outcome_a=outcomes,
    outcome_b=outcomes,
    prior=prior_strategy,
)
@settings(max_examples=80, deadline=None)
def test_conjugate_update_composes(outcome_a, outcome_b, prior):
    # Bayesian updating is associative: two annotation rounds equal one
    # combined round — the property the evolving-KG workflow relies on.
    tau_a, n_a = outcome_a
    tau_b, n_b = outcome_b
    step1 = BetaPosterior.from_counts(prior, tau_a, n_a)
    intermediate_prior = type(prior)(a=step1.a, b=step1.b, name="carried")
    step2 = BetaPosterior.from_counts(intermediate_prior, tau_b, n_b)
    combined = BetaPosterior.from_counts(prior, tau_a + tau_b, n_a + n_b)
    assert step2.a == pytest.approx(combined.a)
    assert step2.b == pytest.approx(combined.b)
