"""Unit tests for the human-machine inference subsystem."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.inference.engine import InferenceEngine
from repro.inference.evaluation import InferenceAssistedEvaluator
from repro.inference.generators import default_rules, generate_inferable_kg
from repro.inference.rules import FunctionalPredicateRule, InversePredicateRule
from repro.intervals.ahpd import AdaptiveHPD
from repro.sampling.twcs import TwoStageWeightedClusterSampling
from repro.kg.graph import KnowledgeGraph
from repro.kg.triple import Triple


@pytest.fixture
def small_kg() -> KnowledgeGraph:
    """Hand-built KG with one functional group and one inverse pair."""
    triples = [
        Triple("p:amy", "bornIn", "c:rome"),      # correct
        Triple("p:amy", "bornIn", "c:paris"),     # distractor
        Triple("p:amy", "bornIn", "c:oslo"),      # distractor
        Triple("s:a", "marriedTo", "s:b"),        # pair, correct
        Triple("s:b", "marriedTo", "s:a"),
        Triple("d:x", "mentions", "t:1"),         # filler
    ]
    labels = [True, False, False, True, True, False]
    return KnowledgeGraph(triples, labels)


def _index_of(kg: KnowledgeGraph, subject: str, obj: str) -> int:
    for i, t in enumerate(kg.triples):
        if t.subject == subject and t.object == obj:
            return i
    raise AssertionError("triple not found")


class TestFunctionalRule:
    def test_correct_fact_labels_siblings_incorrect(self, small_kg):
        engine = InferenceEngine(small_kg, [FunctionalPredicateRule("bornIn")])
        correct = _index_of(small_kg, "p:amy", "c:rome")
        inferences = engine.add_verification(correct, True)
        assert len(inferences) == 2
        for inference in inferences:
            assert inference.label is False
            assert inference.source_index == correct
        assert engine.num_inferred == 2

    def test_incorrect_fact_infers_nothing(self, small_kg):
        engine = InferenceEngine(small_kg, [FunctionalPredicateRule("bornIn")])
        wrong = _index_of(small_kg, "p:amy", "c:paris")
        assert engine.add_verification(wrong, False) == []

    def test_singleton_groups_skip_indexing(self, small_kg):
        rule = FunctionalPredicateRule("mentions")
        rule.prepare(small_kg)
        filler = _index_of(small_kg, "d:x", "t:1")
        assert list(rule.infer(filler, True, {})) == []

    def test_rejects_empty_predicate(self):
        with pytest.raises(ValidationError):
            FunctionalPredicateRule("")


class TestInverseRule:
    def test_label_transfers_both_polarities(self, small_kg):
        for polarity in (True, False):
            engine = InferenceEngine(
                small_kg, [InversePredicateRule("marriedTo", "marriedTo")]
            )
            forward = _index_of(small_kg, "s:a", "s:b")
            backward = _index_of(small_kg, "s:b", "s:a")
            inferences = engine.add_verification(forward, polarity)
            assert [i.triple_index for i in inferences] == [backward]
            assert engine.label_of(backward) is polarity


class TestEngine:
    def test_manual_overrides_nothing_and_counts(self, small_kg):
        engine = InferenceEngine(small_kg, default_rules())
        engine.add_verification(0, small_kg.labels(np.array([0]))[0])
        assert engine.num_manual == 1
        assert engine.label_of(99) is None

    def test_contradicting_verification_raises(self, small_kg):
        engine = InferenceEngine(small_kg, default_rules())
        engine.add_verification(0, True)
        with pytest.raises(ValidationError):
            engine.add_verification(0, False)

    def test_provenance(self, small_kg):
        engine = InferenceEngine(small_kg, [FunctionalPredicateRule("bornIn")])
        correct = _index_of(small_kg, "p:amy", "c:rome")
        engine.add_verification(correct, True)
        distractor = _index_of(small_kg, "p:amy", "c:paris")
        provenance = engine.provenance(distractor)
        assert provenance is not None
        assert provenance.rule.startswith("functional")
        assert engine.provenance(correct) is None  # manual

    def test_soundness_check_on_oracle_labels(self, small_kg):
        engine = InferenceEngine(small_kg, default_rules())
        for idx in range(small_kg.num_triples):
            if engine.label_of(idx) is None:
                engine.add_verification(idx, bool(small_kg.labels(np.array([idx]))[0]))
        assert engine.check_soundness() == engine.num_inferred

    def test_requires_materialised_kg(self):
        from repro.kg.synthetic import SyntheticKG

        with pytest.raises(ValidationError):
            InferenceEngine(SyntheticKG(100, 10, accuracy=0.9, seed=0), default_rules())


class TestGenerator:
    def test_exact_accuracy(self):
        kg = generate_inferable_kg(accuracy=0.8, seed=0)
        assert kg.accuracy == pytest.approx(
            round(0.8 * kg.num_triples) / kg.num_triples
        )

    def test_labels_satisfy_rules(self):
        # Full-oracle propagation must never contradict gold labels.
        kg = generate_inferable_kg(distractor_rate=0.5, accuracy=0.8, seed=1)
        engine = InferenceEngine(kg, default_rules())
        rng = np.random.default_rng(0)
        for idx in rng.permutation(kg.num_triples)[:800]:
            if engine.label_of(int(idx)) is None:
                engine.add_verification(
                    int(idx), bool(kg.labels(np.array([idx]))[0])
                )
        assert engine.check_soundness() > 0

    def test_unreachable_accuracy_raises(self):
        with pytest.raises(ValidationError):
            generate_inferable_kg(num_filler=10, accuracy=0.99, seed=0)

    def test_deterministic(self):
        a = generate_inferable_kg(seed=3)
        b = generate_inferable_kg(seed=3)
        assert a.triples == b.triples


class TestAssistedEvaluator:
    @pytest.fixture(scope="class")
    def setup(self):
        from repro.intervals.ahpd import AdaptiveHPD
        from repro.sampling.twcs import TwoStageWeightedClusterSampling

        kg = generate_inferable_kg(distractor_rate=0.5, accuracy=0.8, seed=42)
        evaluator = InferenceAssistedEvaluator(
            kg=kg,
            strategy=TwoStageWeightedClusterSampling(m=3),
            method=AdaptiveHPD(),
            engine_factory=lambda: InferenceEngine(kg, default_rules()),
        )
        return kg, evaluator

    def test_converges_with_inference(self, setup):
        kg, evaluator = setup
        result = evaluator.run(rng=0)
        assert result.converged
        assert result.moe <= 0.05
        assert result.n_inferred_used > 0
        assert result.n_manual + result.n_inferred_used >= result.n_annotated

    def test_cost_counts_manual_only(self, setup):
        kg, evaluator = setup
        result = evaluator.run(rng=1)
        expected = result.n_entities_manual * 45 + result.n_manual * 25
        assert result.cost.seconds == pytest.approx(expected)

    def test_estimate_unbiased(self, setup):
        kg, evaluator = setup
        estimates = [evaluator.run(rng=seed).mu_hat for seed in range(25)]
        assert np.mean(estimates) == pytest.approx(kg.accuracy, abs=0.03)

    def test_saves_manual_effort(self, setup):
        from repro.evaluation.framework import KGAccuracyEvaluator
        from repro.intervals.ahpd import AdaptiveHPD
        from repro.sampling.twcs import TwoStageWeightedClusterSampling

        kg, evaluator = setup
        baseline = KGAccuracyEvaluator(
            kg, TwoStageWeightedClusterSampling(m=3), AdaptiveHPD()
        )
        manual = np.mean([evaluator.run(rng=s).n_manual for s in range(15)])
        full = np.mean([baseline.run(rng=s).n_triples for s in range(15)])
        assert manual < full

    def test_inference_share_reported(self, setup):
        kg, evaluator = setup
        result = evaluator.run(rng=2)
        assert 0.0 <= result.inference_share <= 1.0


class TestIntervalMemoisation:
    def _evaluator(self, kg):
        return InferenceAssistedEvaluator(
            kg=kg,
            strategy=TwoStageWeightedClusterSampling(m=3),
            method=AdaptiveHPD(),
            engine_factory=lambda: InferenceEngine(kg, default_rules()),
        )

    def test_replays_hit_the_cache(self):
        kg = generate_inferable_kg(accuracy=0.8, seed=0)
        evaluator = self._evaluator(kg)
        evaluator.run(rng=1)
        misses_after_first = evaluator.cache_misses
        assert misses_after_first > 0
        evaluator.run(rng=1)  # same path: every stop-rule solve memoised
        assert evaluator.cache_misses == misses_after_first
        assert evaluator.cache_hits >= misses_after_first

    def test_memoised_result_identical(self):
        kg = generate_inferable_kg(accuracy=0.8, seed=0)
        cold = self._evaluator(kg).run(rng=5)
        warm_evaluator = self._evaluator(kg)
        warm_evaluator.run(rng=5)
        warm = warm_evaluator.run(rng=5)  # second run replays via cache
        assert warm.mu_hat == cold.mu_hat
        assert warm.interval == cold.interval
        assert warm.cost_hours == cold.cost_hours

    def test_clear_resets_counters(self):
        kg = generate_inferable_kg(accuracy=0.8, seed=0)
        evaluator = self._evaluator(kg)
        evaluator.run(rng=2)
        evaluator.clear_interval_cache()
        assert evaluator.cache_hits == 0
        assert evaluator.cache_misses == 0
