"""Repetition-sharding tests: planning, bit-identical merge, resume.

The contract under test is the one the executor's merge barrier relies
on: for ANY chunking of a shardable cell's repetitions — including the
degenerate chunking of one repetition per shard — reducing the in-order
shard payloads reproduces the unsharded result bit for bit, and cache
keys of the merged result do not depend on how it was chunked.
"""

from __future__ import annotations

import io

import numpy as np
import pytest
from hypothesis import given, settings as hyp_settings
from hypothesis import strategies as st

from repro.evaluation.runner import StudyResult
from repro.exceptions import ValidationError
from repro.experiments.config import ExperimentSettings
from repro.runtime import (
    CellShard,
    CoverageCell,
    ParallelExecutor,
    ProgressReporter,
    ResultStore,
    SequentialCoverageCell,
    StudyCell,
    StudyPlan,
    cache_token,
    cell_repetitions,
    is_shardable,
    shard_ranges,
    shard_runner_for,
    shard_token,
)


from dataclasses import dataclass

from repro.runtime import CellSpec, register_cell_runner


@dataclass(frozen=True)
class PlainCell(CellSpec):
    """A cell with no registered sharding triple (and nothing else)."""


@register_cell_runner(PlainCell)
def _run_plain(cell, settings):
    return cell.key


def study_cell(**overrides) -> StudyCell:
    base = dict(
        key=("NELL", "SRS", "Wilson"),
        label="NELL/SRS/Wilson",
        method="Wilson",
        dataset="NELL",
        strategy="SRS",
        seed_stream=(5,),
    )
    base.update(overrides)
    return StudyCell(**base)


def coverage_cell(**overrides) -> CoverageCell:
    base = dict(
        key=("cov", "Wilson"),
        label="cov/Wilson",
        method="Wilson",
        mu=0.8,
        n=25,
        seed=11,
        repetitions=40,
    )
    base.update(overrides)
    return CoverageCell(**base)


def assert_studies_equal(a: StudyResult, b: StudyResult) -> None:
    assert a.label == b.label
    assert np.array_equal(a.triples, b.triples)
    assert np.array_equal(a.cost_hours, b.cost_hours)
    assert np.array_equal(a.estimates, b.estimates)
    assert np.array_equal(a.entities, b.entities)
    assert np.array_equal(a.converged, b.converged)


def assert_results_equal(a, b) -> None:
    if isinstance(a, StudyResult):
        assert_studies_equal(a, b)
    else:
        assert a == b


class TestShardPlanning:
    def test_even_split(self):
        assert shard_ranges(10, 5) == ((0, 5), (5, 10))

    def test_ragged_final_chunk(self):
        assert shard_ranges(10, 7) == ((0, 7), (7, 10))
        assert shard_ranges(10, 3) == ((0, 3), (3, 6), (6, 9), (9, 10))

    def test_chunk_of_one(self):
        assert shard_ranges(3, 1) == ((0, 1), (1, 2), (2, 3))

    def test_chunk_at_least_total_is_single_window(self):
        assert shard_ranges(10, 10) == ((0, 10),)
        assert shard_ranges(10, 99) == ((0, 10),)

    def test_validation(self):
        with pytest.raises(ValidationError):
            shard_ranges(0, 5)
        with pytest.raises(ValidationError):
            shard_ranges(5, 0)

    def test_invalid_executor_chunk_size(self):
        with pytest.raises(ValidationError):
            ParallelExecutor(chunk_size=0)

    def test_env_chunk_size(self, monkeypatch):
        from repro.runtime import default_executor

        # Both env knobs together are a (tested elsewhere) conflict, so
        # pin this test to the fixed-size one whatever the CI leg set.
        monkeypatch.delenv("REPRO_CHUNK_SECONDS", raising=False)
        monkeypatch.setenv("REPRO_CHUNK_SIZE", "7")
        assert default_executor().chunk_size == 7
        monkeypatch.setenv("REPRO_CHUNK_SIZE", "nope")
        with pytest.raises(ValidationError):
            default_executor()
        monkeypatch.delenv("REPRO_CHUNK_SIZE")
        assert default_executor().chunk_size is None

    def test_builtin_kinds_are_shardable(self):
        settings = ExperimentSettings(repetitions=6)
        assert is_shardable(study_cell())
        assert is_shardable(coverage_cell())
        assert is_shardable(
            SequentialCoverageCell(key=("s",), label="s", method="Wilson")
        )
        assert cell_repetitions(study_cell(), settings) == 6
        assert cell_repetitions(coverage_cell(), settings) == 40
        assert cell_repetitions(coverage_cell(repetitions=None), settings) == 6


class TestShardTokens:
    def test_cache_token_ignores_chunk_size(self):
        settings = ExperimentSettings(repetitions=5)
        assert cache_token(study_cell(), settings) == cache_token(
            study_cell(chunk_size=3), settings
        )

    def test_shard_tokens_distinct_per_window_and_total(self):
        settings = ExperimentSettings(repetitions=10)
        cell = study_cell()

        def token(index, shards, start, stop, total):
            shard = CellShard(
                cell=cell, index=index, shards=shards, rep_start=start, rep_stop=stop
            )
            return shard_token(shard, settings, total)

        base = token(0, 2, 0, 5, 10)
        assert token(0, 2, 0, 5, 10) == base  # stable
        assert token(1, 2, 5, 10, 10) != base  # window matters
        assert token(0, 2, 0, 5, 20) != base  # total matters
        assert base != cache_token(cell, settings)  # never the full cell


def plan_of(cells, repetitions=6, seed=0):
    settings = ExperimentSettings(repetitions=repetitions, seed=seed)
    return StudyPlan(settings=settings, cells=tuple(cells), name="shard-test")


class TestChunkedEqualsSerial:
    @given(
        seed=st.integers(0, 2**16),
        repetitions=st.integers(2, 6),
        chunk=st.integers(1, 8),
    )
    @hyp_settings(max_examples=6, deadline=None)
    def test_property_any_chunking(self, seed, repetitions, chunk):
        # The headline guarantee: whatever the seed, the repetition
        # count, and the chunk size (divisor, ragged, oversized, or 1),
        # sharded execution never changes a bit of any cell kind.
        plan = plan_of(
            [
                study_cell(),
                coverage_cell(repetitions=None),
            ],
            repetitions=repetitions,
            seed=seed,
        )
        serial = ParallelExecutor(workers=1).run(plan)
        chunked = ParallelExecutor(workers=1, chunk_size=chunk).run(plan)
        for key in serial.results:
            assert_results_equal(serial.results[key], chunked.results[key])

    def test_parallel_chunked_matches_serial(self):
        plan = plan_of([study_cell(), coverage_cell()], repetitions=10)
        serial = ParallelExecutor(workers=1).run(plan)
        parallel = ParallelExecutor(workers=4, chunk_size=3).run(plan)
        for key in serial.results:
            assert_results_equal(serial.results[key], parallel.results[key])

    def test_sequential_cell_chunked(self):
        cell = SequentialCoverageCell(
            key=("seq",), label="seq", method="Wilson", mu=0.9, seed=2, repetitions=5
        )
        plan = plan_of([cell], repetitions=5)
        serial = ParallelExecutor(workers=1).run(plan)
        ragged = ParallelExecutor(workers=2, chunk_size=2).run(plan)
        assert serial.results[cell.key] == ragged.results[cell.key]

    def test_cell_level_chunk_size_overrides_executor(self):
        plan = plan_of([study_cell(chunk_size=2)], repetitions=6)
        outcome = ParallelExecutor(workers=1).run(plan)  # no executor chunking
        assert outcome.cells[0].shards == 3
        reference = ParallelExecutor(workers=1).run(
            plan_of([study_cell()], repetitions=6)
        )
        assert_studies_equal(
            outcome.results[("NELL", "SRS", "Wilson")],
            reference.results[("NELL", "SRS", "Wilson")],
        )

    def test_oversized_chunk_runs_unsharded(self):
        plan = plan_of([study_cell()], repetitions=3)
        outcome = ParallelExecutor(workers=1, chunk_size=50).run(plan)
        assert outcome.cells[0].shards == 1

    def test_unshardable_cells_ignore_chunking(self):
        # CellSpec subclasses without a registered sharding triple run
        # whole even under an executor-wide chunk size.  (PlainCell is
        # module-level so the plan survives a process/spool/chaos
        # backend forced through REPRO_BACKEND.)
        settings = ExperimentSettings(repetitions=5)
        cell = PlainCell(key=("s",), label="s", method="-")
        plan = StudyPlan(settings=settings, cells=(cell,), name="plain")
        outcome = ParallelExecutor(workers=1, chunk_size=1).run(plan)
        assert outcome.cells[0].shards == 1
        assert outcome.results[("s",)] == ("s",)


class TestShardStoreIntegration:
    def test_shard_entries_consolidated_after_merge(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        plan = plan_of([study_cell()], repetitions=6)
        outcome = ParallelExecutor(workers=1, store=store, chunk_size=2).run(plan)
        assert outcome.cells[0].shards == 3
        # Only the merged cell entry survives; shard scaffolding is gone.
        assert len(store) == 1
        assert store.contains(cache_token(plan.cells[0], plan.settings))

    def test_rerun_under_different_chunking_hits_cache(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        plan = plan_of([study_cell(), coverage_cell()], repetitions=6)
        first = ParallelExecutor(workers=1, store=store, chunk_size=2).run(plan)
        assert first.cache_misses == 2
        for chunk in (None, 1, 3, 50):
            again = ParallelExecutor(workers=1, store=store, chunk_size=chunk).run(plan)
            assert again.cache_hits == 2, chunk
            for key in first.results:
                assert_results_equal(first.results[key], again.results[key])

    def test_resume_from_partial_shards(self, tmp_path):
        # Interruption model: shards are persisted one by one, so a
        # killed 1,000-rep cell leaves a prefix (any subset, in fact)
        # of its shard entries.  The re-run must recompute only the
        # missing shards and merge to the uninterrupted result.
        store = ResultStore(tmp_path / "cache")
        settings = ExperimentSettings(repetitions=10, seed=3)
        cell = study_cell()
        plan = StudyPlan(settings=settings, cells=(cell,), name="resume")
        ranges = shard_ranges(10, 3)
        shards = [
            CellShard(
                cell=cell, index=i, shards=len(ranges), rep_start=a, rep_stop=b
            )
            for i, (a, b) in enumerate(ranges)
        ]
        group = cache_token(cell, settings)
        for shard in (shards[0], shards[2]):  # non-contiguous subset
            value = shard_runner_for(cell)(
                cell, settings, shard.rep_start, shard.rep_stop
            )
            store.save(
                shard_token(shard, settings, 10),
                {"value": value, "label": shard.label, "seconds": 1.0},
                group=group,
            )

        outcome = ParallelExecutor(workers=1, store=store, chunk_size=3).run(plan)
        entry = outcome.cells[0]
        assert entry.shards == 4
        assert entry.shards_cached == 2
        assert not entry.cached  # two shards actually computed

        reference = ParallelExecutor(workers=1).run(plan)
        assert_studies_equal(reference.results[cell.key], outcome.results[cell.key])

    def test_resume_when_all_shards_finished_before_merge(self, tmp_path):
        # A run killed between its last shard and the merge leaves every
        # shard entry but no cell entry; the re-run merges from cache
        # without computing anything.
        store = ResultStore(tmp_path / "cache")
        settings = ExperimentSettings(repetitions=6, seed=1)
        cell = study_cell()
        plan = StudyPlan(settings=settings, cells=(cell,), name="merge-only")
        ranges = shard_ranges(6, 2)
        group = cache_token(cell, settings)
        for i, (a, b) in enumerate(ranges):
            shard = CellShard(
                cell=cell, index=i, shards=len(ranges), rep_start=a, rep_stop=b
            )
            value = shard_runner_for(cell)(cell, settings, a, b)
            store.save(
                shard_token(shard, settings, 6),
                {"value": value, "label": shard.label, "seconds": 1.0},
                group=group,
            )

        outcome = ParallelExecutor(workers=1, store=store, chunk_size=2).run(plan)
        entry = outcome.cells[0]
        assert entry.cached  # nothing computed this run
        assert entry.shards_cached == entry.shards == 3
        reference = ParallelExecutor(workers=1).run(plan)
        assert_studies_equal(reference.results[cell.key], outcome.results[cell.key])

    def test_merge_sweeps_stale_chunkings_shard_entries(self, tmp_path):
        # An interrupted run under chunk=3 leaves shard entries; the
        # resume happens under chunk=2, which can reuse none of them.
        # The merge must still sweep the stale windows (the group is
        # keyed by the chunking-independent cell token), leaving only
        # the merged entry on disk.
        store = ResultStore(tmp_path / "cache")
        settings = ExperimentSettings(repetitions=6, seed=1)
        cell = study_cell()
        plan = StudyPlan(settings=settings, cells=(cell,), name="stale")
        group = cache_token(cell, settings)
        stale = CellShard(cell=cell, index=0, shards=2, rep_start=0, rep_stop=3)
        value = shard_runner_for(cell)(cell, settings, 0, 3)
        store.save(
            shard_token(stale, settings, 6),
            {"value": value, "label": stale.label, "seconds": 1.0},
            group=group,
        )
        assert len(store) == 1

        outcome = ParallelExecutor(workers=1, store=store, chunk_size=2).run(plan)
        assert outcome.cells[0].shards == 3
        assert outcome.cells[0].shards_cached == 0  # stale windows unusable
        assert len(store) == 1  # merged entry only; stale shard swept
        assert store.contains(group)


class _TtyStream(io.StringIO):
    def isatty(self) -> bool:  # pragma: no cover - trivial
        return True


class TestShardProgress:
    def test_one_callback_per_cell_not_per_shard(self):
        plan = plan_of([study_cell(), coverage_cell()], repetitions=6)
        seen = []
        executor = ParallelExecutor(
            workers=1,
            chunk_size=2,
            progress=lambda done, total, result: seen.append(
                (done, total, result.shards)
            ),
        )
        executor.run(plan)
        assert [done for done, _, _ in seen] == [1, 2]
        assert all(total == 2 for _, total, _ in seen)
        assert [shards for _, _, shards in seen] == [3, 20]

    def test_reporter_prints_one_line_per_sharded_cell(self):
        stream = io.StringIO()  # not a tty: no shard ticker
        plan = plan_of([study_cell()], repetitions=6)
        ParallelExecutor(
            workers=1, chunk_size=1, progress=ProgressReporter(stream=stream)
        ).run(plan)
        lines = [line for line in stream.getvalue().splitlines() if line.strip()]
        assert len(lines) == 1
        assert "6 shards" in lines[0]

    def test_shard_ticker_only_on_tty(self):
        plan = plan_of([study_cell()], repetitions=4)
        plain = io.StringIO()
        ParallelExecutor(
            workers=1, chunk_size=2, progress=ProgressReporter(stream=plain)
        ).run(plan)
        assert "\r" not in plain.getvalue()

        tty = _TtyStream()
        ParallelExecutor(
            workers=1, chunk_size=2, progress=ProgressReporter(stream=tty)
        ).run(plan)
        output = tty.getvalue()
        assert "\r" in output
        assert "shards" in output
        assert "(2/4 reps)" in output
