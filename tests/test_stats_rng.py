"""Unit tests for deterministic random-source handling."""

from __future__ import annotations

import numpy as np

from repro.stats.rng import derive_seed, spawn_rng


class TestSpawnRng:
    def test_seed_is_deterministic(self):
        a = spawn_rng(42).random(5)
        b = spawn_rng(42).random(5)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert spawn_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(spawn_rng(None), np.random.Generator)

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(7)
        a = spawn_rng(seq)
        assert isinstance(a, np.random.Generator)

    def test_different_seeds_differ(self):
        assert not np.array_equal(spawn_rng(1).random(5), spawn_rng(2).random(5))


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(0, 3) == derive_seed(0, 3)

    def test_index_sensitivity(self):
        assert derive_seed(0, 1) != derive_seed(0, 2)

    def test_base_sensitivity(self):
        assert derive_seed(1, 0) != derive_seed(2, 0)

    def test_multi_index(self):
        assert derive_seed(0, 1, 2) != derive_seed(0, 2, 1)

    def test_non_negative_63bit(self):
        for i in range(20):
            seed = derive_seed(123, i)
            assert 0 <= seed < 2**63

    def test_derived_streams_look_independent(self):
        a = spawn_rng(derive_seed(0, 0)).random(2_000)
        b = spawn_rng(derive_seed(0, 1)).random(2_000)
        corr = np.corrcoef(a, b)[0, 1]
        assert abs(corr) < 0.1
