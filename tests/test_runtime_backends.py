"""Backend-stack tests: selection, bit-identity, cross-backend resume.

The contract under test is the tentpole guarantee of the scheduler /
backend split: an :class:`ExecutionBackend` changes *where* units of
work run and nothing else.  For the same plan, the serial, process-pool,
and spool backends produce bit-identical ``PlanOutcome.results`` under
arbitrary chunkings, cache tokens never depend on the backend, and a
run interrupted on one backend resumes on any other at the
finished-shard boundary.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass

import numpy as np
import pytest
from hypothesis import given, settings as hyp_settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.experiments.config import ExperimentSettings
from repro.runtime import (
    CellShard,
    CellSpec,
    CoverageCell,
    ExecutionBackend,
    ParallelExecutor,
    ProcessPoolBackend,
    ResultStore,
    SerialBackend,
    SpoolBackend,
    StudyCell,
    StudyPlan,
    cache_token,
    configure,
    default_executor,
    make_backend,
    register_cell_runner,
    shard_ranges,
    shard_runner_for,
    shard_token,
)


def study_cell(**overrides) -> StudyCell:
    base = dict(
        key=("NELL", "SRS", "Wilson"),
        label="NELL/SRS/Wilson",
        method="Wilson",
        dataset="NELL",
        strategy="SRS",
        seed_stream=(5,),
    )
    base.update(overrides)
    return StudyCell(**base)


def coverage_cell(**overrides) -> CoverageCell:
    base = dict(
        key=("cov", "Wilson"),
        label="cov/Wilson",
        method="Wilson",
        mu=0.8,
        n=25,
        seed=11,
        repetitions=12,
    )
    base.update(overrides)
    return CoverageCell(**base)


def plan_of(cells, repetitions=6, seed=0):
    settings = ExperimentSettings(repetitions=repetitions, seed=seed)
    return StudyPlan(settings=settings, cells=tuple(cells), name="backend-test")


def assert_results_equal(a, b) -> None:
    if hasattr(a, "estimates"):
        assert np.array_equal(a.triples, b.triples)
        assert np.array_equal(a.cost_hours, b.cost_hours)
        assert np.array_equal(a.estimates, b.estimates)
        assert np.array_equal(a.entities, b.entities)
        assert np.array_equal(a.converged, b.converged)
    else:
        assert a == b


class TestBackendSelection:
    @pytest.fixture(autouse=True)
    def _clear_backend_env(self, monkeypatch):
        # These tests probe the *selection* rules, so the suite-wide CI
        # env (e.g. the REPRO_BACKEND=spool leg) must not preempt them;
        # tests that want the env set it explicitly.
        monkeypatch.delenv("REPRO_BACKEND", raising=False)

    def test_auto_is_serial_at_one_worker(self):
        plan = plan_of([study_cell()])
        outcome = ParallelExecutor(workers=1).run(plan)
        assert outcome.backend == "serial"

    def test_auto_is_process_with_workers_and_work(self):
        plan = plan_of([study_cell(), coverage_cell()])
        outcome = ParallelExecutor(workers=2).run(plan)
        assert outcome.backend == "process"

    def test_auto_degrades_to_serial_for_single_unit(self):
        plan = plan_of([study_cell()])
        outcome = ParallelExecutor(workers=4).run(plan)
        assert outcome.backend == "serial"

    def test_env_backend_forces_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "serial")
        plan = plan_of([study_cell(), coverage_cell()])
        outcome = ParallelExecutor(workers=4).run(plan)
        assert outcome.backend == "serial"

    def test_explicit_argument_beats_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_BACKEND", f"spool:{tmp_path / 'q'}")
        plan = plan_of([study_cell(), coverage_cell()])
        outcome = ParallelExecutor(workers=2, backend="serial").run(plan)
        assert outcome.backend == "serial"

    def test_invalid_backend_fails_at_construction(self, monkeypatch):
        with pytest.raises(ValidationError):
            ParallelExecutor(backend="teleport")
        monkeypatch.setenv("REPRO_BACKEND", "bogus")
        with pytest.raises(ValidationError):
            ParallelExecutor()

    def test_configure_flows_into_default_executor(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        configure(backend="serial")
        try:
            assert default_executor().backend == "serial"
        finally:
            configure(backend=None)

    def test_env_read_when_unconfigured(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "process")
        assert default_executor().backend == "process"
        monkeypatch.delenv("REPRO_BACKEND")
        assert default_executor().backend is None

    def test_make_backend_parses_specs(self, tmp_path):
        assert isinstance(make_backend("serial"), SerialBackend)
        pool = make_backend("process:3")
        assert isinstance(pool, ProcessPoolBackend)
        assert pool.workers == 3
        spool = make_backend(f"spool:{tmp_path / 'q'}")
        assert isinstance(spool, SpoolBackend)
        with pytest.raises(ValidationError):
            make_backend("bogus")

    def test_spool_without_directory_fails(self, monkeypatch):
        monkeypatch.delenv("REPRO_SPOOL_DIR", raising=False)
        plan = plan_of([study_cell()])
        with pytest.raises(ValidationError):
            ParallelExecutor(backend="spool").run(plan)

    def test_spool_directory_from_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SPOOL_DIR", str(tmp_path / "q"))
        plan = plan_of([study_cell()])
        outcome = ParallelExecutor(backend="spool").run(plan)
        assert outcome.backend == "spool"
        assert outcome.cache_misses == 1


class TestBackendBitIdentity:
    @given(
        seed=st.integers(0, 2**16),
        repetitions=st.integers(2, 5),
        chunk_process=st.integers(1, 8),
        chunk_spool=st.integers(1, 8),
    )
    @hyp_settings(max_examples=5, deadline=None)
    def test_property_three_backends_any_chunking(
        self, seed, repetitions, chunk_process, chunk_spool
    ):
        # The acceptance property: for the same StudyPlan, the serial,
        # process-pool, and spool backends produce bit-identical
        # results under arbitrary (and different!) chunkings.
        plan = plan_of(
            [study_cell(), coverage_cell(repetitions=None)],
            repetitions=repetitions,
            seed=seed,
        )
        serial = ParallelExecutor(workers=1, backend="serial").run(plan)
        process = ParallelExecutor(
            workers=2, backend="process", chunk_size=chunk_process
        ).run(plan)
        with tempfile.TemporaryDirectory() as spool_dir:
            spool = ParallelExecutor(
                workers=1, backend=f"spool:{spool_dir}", chunk_size=chunk_spool
            ).run(plan)
        assert serial.results.keys() == process.results.keys() == spool.results.keys()
        for key in serial.results:
            assert_results_equal(serial.results[key], process.results[key])
            assert_results_equal(serial.results[key], spool.results[key])

    def test_spool_matches_serial_on_multi_cell_grid(self, tmp_path):
        plan = plan_of([study_cell(), coverage_cell()], repetitions=5)
        serial = ParallelExecutor(workers=1).run(plan)
        spool = ParallelExecutor(
            backend=SpoolBackend(tmp_path / "q"), chunk_size=2
        ).run(plan)
        for key in serial.results:
            assert_results_equal(serial.results[key], spool.results[key])


class TestCrossBackendResume:
    def test_cache_tokens_are_backend_independent(self, tmp_path):
        # A store populated under one backend must be a full cache hit
        # under every other: the token has no backend input at all.
        plan = plan_of([study_cell(), coverage_cell()], repetitions=4)
        store = ResultStore(tmp_path / "cache")
        first = ParallelExecutor(
            backend=SpoolBackend(tmp_path / "q"), store=store
        ).run(plan)
        assert first.cache_misses == len(plan)
        for backend in ("serial", "process"):
            again = ParallelExecutor(
                workers=2, backend=backend, store=store
            ).run(plan)
            assert again.cache_hits == len(plan), backend
            for key in first.results:
                assert_results_equal(first.results[key], again.results[key])

    def test_interrupted_on_one_backend_resumes_on_another(self, tmp_path):
        # Interruption model: a sharded cell finished only some of its
        # windows (persisted one by one) before the run died.  The
        # resume — on a *different* backend — must recompute only the
        # missing windows and merge to the uninterrupted result.
        store = ResultStore(tmp_path / "cache")
        settings = ExperimentSettings(repetitions=10, seed=3)
        cell = study_cell()
        plan = StudyPlan(settings=settings, cells=(cell,), name="resume")
        ranges = shard_ranges(10, 3)
        shards = [
            CellShard(
                cell=cell, index=i, shards=len(ranges), rep_start=a, rep_stop=b
            )
            for i, (a, b) in enumerate(ranges)
        ]
        group = cache_token(cell, settings)
        for shard in (shards[0], shards[2]):  # non-contiguous subset
            value = shard_runner_for(cell)(
                cell, settings, shard.rep_start, shard.rep_stop
            )
            store.save(
                shard_token(shard, settings, 10),
                {"value": value, "label": shard.label, "seconds": 1.0},
                group=group,
            )

        resumed = ParallelExecutor(
            backend=SpoolBackend(tmp_path / "q"), store=store, chunk_size=3
        ).run(plan)
        entry = resumed.cells[0]
        assert entry.shards == 4
        assert entry.shards_cached == 2
        assert not entry.cached  # two shards actually computed

        reference = ParallelExecutor(workers=1).run(plan)
        assert_results_equal(reference.results[cell.key], resumed.results[cell.key])

    def test_spool_run_killed_mid_plan_resumes_serially(self, tmp_path):
        # Whole-cell granularity: a spool run that completed a prefix
        # of the grid resumes serially from the store.
        plan = plan_of([study_cell(), coverage_cell()], repetitions=4)
        store = ResultStore(tmp_path / "cache")
        prefix = StudyPlan(
            settings=plan.settings, cells=plan.cells[:1], name="prefix"
        )
        ParallelExecutor(
            backend=SpoolBackend(tmp_path / "q"), store=store
        ).run(prefix)
        resumed = ParallelExecutor(workers=1, backend="serial", store=store).run(plan)
        assert resumed.cache_hits == 1
        assert resumed.cache_misses == 1


@dataclass(frozen=True)
class FailingCell(CellSpec):
    pass


@register_cell_runner(FailingCell)
def _run_failing_cell(cell, settings):
    raise ValidationError("intentional failure")


class TestSpoolMechanics:
    def test_spool_sweeps_its_files_after_a_run(self, tmp_path):
        spool_dir = tmp_path / "q"
        plan = plan_of([study_cell(), coverage_cell()], repetitions=4)
        ParallelExecutor(backend=SpoolBackend(spool_dir), chunk_size=2).run(plan)
        assert list((spool_dir / "tasks").iterdir()) == []
        assert list((spool_dir / "claimed").iterdir()) == []
        assert list((spool_dir / "results").iterdir()) == []

    def test_task_error_propagates_to_the_run(self, tmp_path):
        from repro.runtime import PlanExecutionError

        cell = FailingCell(key=("boom",), label="boom", method="-")
        plan = plan_of([cell])
        with pytest.raises(PlanExecutionError, match="intentional failure") as info:
            ParallelExecutor(
                backend=SpoolBackend(tmp_path / "q"), max_retries=0
            ).run(plan)
        # The abort carries the failure record, cause included.
        (failure,) = info.value.failures
        assert failure.label == "boom"
        assert "ValidationError" in failure.error
        # The failed run swept its spool files on close.
        assert list((tmp_path / "q" / "tasks").iterdir()) == []

    def test_unpicklable_task_runs_inline(self, tmp_path):
        # A cell class defined locally cannot pickle, so it could never
        # reach another process under ANY backend; the spool degrades
        # to inline execution for exactly those units.
        @dataclass(frozen=True)
        class LocalCell(CellSpec):
            pass

        @register_cell_runner(LocalCell)
        def _run_local(cell, settings):
            return ("ran", cell.key)

        cell = LocalCell(key=("local",), label="local", method="-")
        plan = plan_of([cell])
        outcome = ParallelExecutor(backend=SpoolBackend(tmp_path / "q")).run(plan)
        assert outcome.results[("local",)] == ("ran", ("local",))
        assert list((tmp_path / "q" / "tasks").iterdir()) == []

    def test_corrupt_task_file_is_poisoned_not_fatal(self, tmp_path):
        spool_dir = tmp_path / "q"
        (spool_dir / "tasks").mkdir(parents=True)
        (spool_dir / "tasks" / "garbage-000000.task").write_bytes(b"not a pickle")
        plan = plan_of([study_cell()])
        outcome = ParallelExecutor(backend=SpoolBackend(spool_dir)).run(plan)
        assert outcome.cache_misses == 1
        # The foreign file is back in the queue for a claimant that can
        # read it; this run's own files are swept.
        leftovers = [p.name for p in (spool_dir / "tasks").iterdir()]
        assert leftovers == ["garbage-000000.task"]

    def test_stale_claims_are_reclaimed(self, tmp_path):
        # A worker that leased a task and died must not hang the run:
        # once the lease goes stale the scheduler returns the task to
        # the queue and (participating) executes it itself.  Driven
        # through the backend directly so the "crashed worker" claim is
        # deterministic rather than a race against participation.
        import os
        import time as _time

        spool_dir = tmp_path / "q"
        backend = SpoolBackend(spool_dir, reclaim_seconds=0.2, poll_interval=0.02)
        settings = ExperimentSettings(repetitions=3, seed=0)
        cell = study_cell()
        backend.open(workers=1, tasks=1, settings=settings)
        try:
            future = backend.submit(cell, settings)
            task_file = next((spool_dir / "tasks").glob("*.task"))
            claimed = spool_dir / "claimed" / task_file.name
            os.rename(task_file, claimed)  # the crashed worker's lease
            stale = _time.time() - 60.0
            os.utime(claimed, (stale, stale))

            ready, rest = backend.wait_any({future})
            assert ready == {future} and rest == set()
            value, seconds = future.result()
        finally:
            backend.close()
        plan = StudyPlan(settings=settings, cells=(cell,), name="reclaim")
        reference = ParallelExecutor(workers=1).run(plan)
        assert_results_equal(reference.results[cell.key], value)


@dataclass(frozen=True)
class UnpicklableResultCell(CellSpec):
    pass


@register_cell_runner(UnpicklableResultCell)
def _run_unpicklable_result(cell, settings):
    return lambda: None  # a value no process boundary could carry


class TestSpoolResultEdgeCases:
    def test_unpicklable_result_surfaces_as_spool_task_error(self, tmp_path):
        from repro.runtime import PlanExecutionError

        cell = UnpicklableResultCell(key=("lam",), label="lam", method="-")
        plan = plan_of([cell])
        with pytest.raises(PlanExecutionError, match="unpicklable result") as info:
            ParallelExecutor(
                backend=SpoolBackend(tmp_path / "q"), max_retries=0
            ).run(plan)
        (failure,) = info.value.failures
        assert "SpoolTaskError" in failure.error

    def test_executor_repr_mentions_backend(self, tmp_path):
        text = repr(ParallelExecutor(backend="serial"))
        assert "backend='serial'" in text


class TestDefaultWaitAny:
    def test_base_wait_any_polls_until_done(self):
        # The protocol's default wait primitive: poll done() with a
        # short sleep — what a minimal third-party backend inherits.
        from repro.runtime import BackendFuture

        class CountdownFuture(BackendFuture):
            def __init__(self, polls):
                self._polls = polls

            def done(self):
                self._polls -= 1
                return self._polls <= 0

            def result(self):
                return ("ok", 0.0)

        class MinimalBackend(ExecutionBackend):
            name = "minimal"

            def submit(self, task, settings):  # pragma: no cover - unused
                raise NotImplementedError

        fast, slow = CountdownFuture(1), CountdownFuture(3)
        backend = MinimalBackend()
        ready, rest = backend.wait_any({fast, slow})
        assert ready == {fast} and rest == {slow}
        ready, rest = backend.wait_any(rest)
        assert ready == {slow} and rest == set()


class TestCustomBackendProtocol:
    def test_backend_instance_injection_and_lifecycle(self):
        # Any ExecutionBackend implementation slots in: this recording
        # backend delegates to the serial one and logs the lifecycle.
        events = []

        class RecordingBackend(ExecutionBackend):
            name = "recording"

            def __init__(self):
                self._inner = SerialBackend()

            def open(self, workers, tasks, settings):
                events.append(("open", workers, tasks))
                self._inner.open(workers, tasks, settings)

            def close(self):
                events.append(("close",))
                self._inner.close()

            def submit(self, task, settings):
                events.append(("submit", type(task).__name__))
                return self._inner.submit(task, settings)

            def wait_any(self, outstanding):
                return self._inner.wait_any(outstanding)

        plan = plan_of([study_cell(), coverage_cell()], repetitions=4)
        backend = RecordingBackend()
        outcome = ParallelExecutor(workers=3, backend=backend, chunk_size=2).run(plan)
        assert outcome.backend == "recording"
        assert events[0] == ("open", 3, 8)  # 2 reps-shards + 6 cov-shards
        assert events[-1] == ("close",)
        assert [e for e in events if e[0] == "submit"] == [
            ("submit", "CellShard")
        ] * 8
        reference = ParallelExecutor(workers=1).run(plan)
        for key in reference.results:
            assert_results_equal(reference.results[key], outcome.results[key])
