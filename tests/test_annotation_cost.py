"""Unit tests for the annotation cost model (paper Eq. 12)."""

from __future__ import annotations

import pytest

from repro.annotation.cost import DEFAULT_COST_MODEL, AnnotationCost, CostModel
from repro.exceptions import ValidationError


class TestCostModel:
    def test_paper_defaults(self):
        assert DEFAULT_COST_MODEL.entity_cost == 45.0
        assert DEFAULT_COST_MODEL.triple_cost == 25.0
        assert DEFAULT_COST_MODEL.annotators_per_fact == 1

    def test_eq12(self):
        # cost = |E_S| * c1 + |T_S| * c2
        cost = DEFAULT_COST_MODEL.price(num_entities=10, num_triples=30)
        assert cost.seconds == 10 * 45 + 30 * 25

    def test_hours_conversion(self):
        cost = DEFAULT_COST_MODEL.price(num_entities=0, num_triples=144)
        assert cost.hours == pytest.approx(144 * 25 / 3600)

    def test_multi_annotator_multiplier(self):
        model = CostModel(annotators_per_fact=3)
        assert model.seconds(10, 30) == 3 * (10 * 45 + 30 * 25)

    def test_shortcuts_match_price(self):
        model = CostModel()
        assert model.seconds(4, 9) == model.price(4, 9).seconds
        assert model.hours(4, 9) == model.price(4, 9).hours

    def test_zero_effort(self):
        cost = DEFAULT_COST_MODEL.price(0, 0)
        assert cost.seconds == 0.0
        assert cost.hours == 0.0

    def test_rejects_negative_entities(self):
        with pytest.raises(ValidationError):
            DEFAULT_COST_MODEL.price(-1, 0)

    def test_rejects_negative_costs(self):
        with pytest.raises(ValidationError):
            CostModel(entity_cost=-1.0)

    def test_paper_example_yago_srs(self):
        # ~33 distinct triples, ~33 distinct entities under SRS on YAGO
        # gives ~0.64h, consistent with Table 3's 0.62±0.12.
        cost = DEFAULT_COST_MODEL.price(33, 33)
        assert cost.hours == pytest.approx(0.64, abs=0.01)


class TestAnnotationCost:
    def test_addition(self):
        a = AnnotationCost(num_entities=2, num_triples=5, seconds=215.0)
        b = AnnotationCost(num_entities=1, num_triples=3, seconds=120.0)
        total = a + b
        assert total.num_entities == 3
        assert total.num_triples == 8
        assert total.seconds == 335.0

    def test_immutable(self):
        cost = AnnotationCost(1, 1, 70.0)
        with pytest.raises(AttributeError):
            cost.seconds = 0.0
