"""Unit tests for experiment settings."""

from __future__ import annotations

import pytest

from repro.exceptions import ValidationError
from repro.experiments.config import (
    DEFAULT_SETTINGS,
    FAST_SETTINGS,
    TWCS_M,
    ExperimentSettings,
)


class TestSettings:
    def test_paper_protocol_defaults(self):
        assert DEFAULT_SETTINGS.repetitions == 1_000
        assert DEFAULT_SETTINGS.alpha == 0.05
        assert DEFAULT_SETTINGS.epsilon == 0.05
        assert DEFAULT_SETTINGS.datasets == ("YAGO", "NELL", "DBPEDIA", "FACTBENCH")

    def test_twcs_m_per_paper(self):
        assert TWCS_M["YAGO"] == 3
        assert TWCS_M["FACTBENCH"] == 3
        assert TWCS_M["SYN100M"] == 5

    def test_fast_profile(self):
        assert FAST_SETTINGS.repetitions == 100

    def test_evaluation_config_alpha_override(self):
        config = DEFAULT_SETTINGS.evaluation_config(alpha=0.01)
        assert config.alpha == 0.01
        assert config.epsilon == DEFAULT_SETTINGS.epsilon

    def test_with_repetitions(self):
        derived = DEFAULT_SETTINGS.with_repetitions(5)
        assert derived.repetitions == 5
        assert derived.seed == DEFAULT_SETTINGS.seed

    def test_rejects_unknown_solver(self):
        with pytest.raises(ValidationError):
            ExperimentSettings(solver="nope")

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValidationError):
            ExperimentSettings(alpha=0.0)
