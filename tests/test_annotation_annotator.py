"""Unit tests for annotators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.annotation.annotator import NoisyAnnotator, OracleAnnotator
from repro.exceptions import ValidationError


class TestOracleAnnotator:
    def test_replays_ground_truth(self, tiny_kg):
        oracle = OracleAnnotator()
        idx = np.arange(tiny_kg.num_triples)
        assert np.array_equal(oracle.annotate(tiny_kg, idx), tiny_kg.labels(idx))

    def test_subset(self, tiny_kg):
        oracle = OracleAnnotator()
        judged = oracle.annotate(tiny_kg, [0, 5])
        assert judged.shape == (2,)

    def test_repr(self):
        assert repr(OracleAnnotator()) == "OracleAnnotator()"


class TestNoisyAnnotator:
    def test_zero_error_equals_oracle(self, tiny_kg):
        noisy = NoisyAnnotator(error_rate=0.0, seed=0)
        idx = np.arange(tiny_kg.num_triples)
        assert np.array_equal(noisy.annotate(tiny_kg, idx), tiny_kg.labels(idx))

    def test_full_error_flips_everything(self, tiny_kg):
        noisy = NoisyAnnotator(error_rate=1.0, seed=0)
        idx = np.arange(tiny_kg.num_triples)
        assert np.array_equal(noisy.annotate(tiny_kg, idx), ~tiny_kg.labels(idx))

    def test_error_rate_realised(self, medium_kg):
        noisy = NoisyAnnotator(error_rate=0.2, seed=0)
        idx = np.arange(medium_kg.num_triples)
        judged = noisy.annotate(medium_kg, idx)
        disagreement = float(np.mean(judged != medium_kg.labels(idx)))
        assert disagreement == pytest.approx(0.2, abs=0.03)

    def test_explicit_rng_is_deterministic(self, tiny_kg):
        noisy = NoisyAnnotator(error_rate=0.5)
        idx = np.arange(tiny_kg.num_triples)
        a = noisy.annotate(tiny_kg, idx, rng=7)
        b = noisy.annotate(tiny_kg, idx, rng=7)
        assert np.array_equal(a, b)

    def test_quality_property(self):
        assert NoisyAnnotator(0.15).quality == pytest.approx(0.85)

    def test_rejects_bad_rate(self):
        with pytest.raises(ValidationError):
            NoisyAnnotator(error_rate=1.5)
