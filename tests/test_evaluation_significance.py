"""Unit tests for the significance-testing layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation.runner import StudyResult
from repro.evaluation.significance import (
    compare_costs,
    compare_triples,
    significance_markers,
)


def _study(label: str, cost_mean: float, cost_std: float, n: int = 200, seed: int = 0):
    rng = np.random.default_rng(seed)
    cost = rng.normal(cost_mean, cost_std, size=n)
    triples = np.clip((cost * 120).astype(np.int64), 30, None)
    return StudyResult(
        label=label,
        triples=triples,
        cost_hours=cost,
        estimates=np.full(n, 0.9),
        entities=triples,
        converged=np.ones(n, dtype=bool),
    )


class TestCompareCosts:
    def test_clear_difference_significant(self):
        a = _study("ahpd", 1.5, 0.2, seed=1)
        b = _study("wilson", 2.0, 0.2, seed=2)
        comparison = compare_costs(a, b)
        assert comparison.significant
        assert comparison.better == "ahpd"

    def test_identical_distributions_not_significant(self):
        a = _study("a", 2.0, 0.3, seed=3)
        b = _study("b", 2.0, 0.3, seed=4)
        assert not compare_costs(a, b).significant

    def test_str(self):
        text = str(compare_costs(_study("a", 1.0, 0.1, seed=5), _study("b", 1.0, 0.1, seed=6)))
        assert "a (" in text and "vs b" in text


class TestCompareTriples:
    def test_uses_triples_column(self):
        a = _study("a", 1.0, 0.1, seed=7)
        b = _study("b", 3.0, 0.1, seed=8)
        comparison = compare_triples(a, b)
        assert comparison.mean_a == pytest.approx(a.triples.mean())
        assert comparison.significant


class TestMarkers:
    def test_both_markers(self):
        candidate = _study("ahpd", 1.0, 0.1, seed=9)
        wald = _study("wald", 1.5, 0.1, seed=10)
        wilson = _study("wilson", 1.6, 0.1, seed=11)
        assert significance_markers(candidate, wald, wilson) == "†‡"

    def test_wilson_only(self):
        candidate = _study("ahpd", 1.0, 0.2, seed=12)
        tied = _study("wald", 1.0, 0.2, seed=13)
        wilson = _study("wilson", 2.0, 0.2, seed=14)
        assert significance_markers(candidate, tied, wilson) == "‡"

    def test_no_baselines_no_markers(self):
        assert significance_markers(_study("x", 1.0, 0.1)) == ""
