"""End-to-end integration tests across the full stack.

These exercise the complete paper pipeline — dataset generation,
sampling, annotation, interval estimation, stopping — and check the
qualitative results the paper reports, at Monte-Carlo scales small
enough for CI.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    AdaptiveHPD,
    AnnotatorPool,
    EvaluationConfig,
    KGAccuracyEvaluator,
    NoisyAnnotator,
    SimpleRandomSampling,
    TwoStageWeightedClusterSampling,
    WaldInterval,
    WilsonInterval,
    load_dataset,
    load_syn100m,
    run_study,
)


class TestPaperOrderings:
    """The qualitative rankings behind Tables 2-3, at reduced scale."""

    @pytest.fixture(scope="class")
    def nell(self):
        return load_dataset("NELL", seed=42)

    @pytest.fixture(scope="class")
    def studies(self, nell):
        methods = {
            "Wald": WaldInterval(),
            "Wilson": WilsonInterval(),
            "aHPD": AdaptiveHPD(),
        }
        return {
            name: run_study(
                KGAccuracyEvaluator(nell, SimpleRandomSampling(), method),
                repetitions=60,
                seed=0,
            )
            for name, method in methods.items()
        }

    def test_ahpd_beats_wilson_on_skewed_kg(self, studies):
        assert studies["aHPD"].triples.mean() < studies["Wilson"].triples.mean()

    def test_ahpd_beats_wald_on_skewed_kg(self, studies):
        assert studies["aHPD"].triples.mean() <= studies["Wald"].triples.mean()

    def test_all_methods_unbiased(self, studies, nell):
        for study in studies.values():
            assert abs(study.estimate_bias(nell.accuracy)) < 0.02

    def test_all_runs_converged(self, studies):
        for study in studies.values():
            assert study.convergence_rate == 1.0


class TestScalabilityClaim:
    """Table 4's claim: size does not change convergence behaviour."""

    def test_syn100m_matches_small_scale_magnitude(self):
        kg = load_syn100m(accuracy=0.9, seed=0)
        evaluator = KGAccuracyEvaluator(kg, SimpleRandomSampling(), AdaptiveHPD())
        study = run_study(evaluator, repetitions=15, seed=0)
        # Paper Table 4 reports 114±46 under SRS at mu = 0.9.
        assert 60 <= study.triples.mean() <= 220

    def test_symmetric_accuracies_cost_the_same(self):
        results = {}
        for mu in (0.9, 0.1):
            kg = load_syn100m(accuracy=mu, seed=0)
            evaluator = KGAccuracyEvaluator(kg, SimpleRandomSampling(), AdaptiveHPD())
            results[mu] = run_study(evaluator, repetitions=15, seed=0).triples.mean()
        ratio = results[0.9] / results[0.1]
        assert 0.6 < ratio < 1.6


class TestCrowdsourcedPipeline:
    """The DBPEDIA-style noisy-crowd annotation workflow end to end."""

    def test_majority_vote_audit_close_to_truth(self):
        kg = load_dataset("YAGO", seed=42)
        crowd = AnnotatorPool(
            [NoisyAnnotator(rate, seed=i) for i, rate in enumerate((0.05, 0.08, 0.12))]
        )
        evaluator = KGAccuracyEvaluator(
            kg,
            TwoStageWeightedClusterSampling(m=3),
            AdaptiveHPD(),
            annotator=crowd,
        )
        estimates = [evaluator.run(rng=seed).mu_hat for seed in range(20)]
        assert np.mean(estimates) == pytest.approx(kg.accuracy, abs=0.05)


class TestPrecisionSweep:
    """Figure 4's claim: tighter alpha costs more, aHPD stays ahead."""

    def test_cost_grows_with_confidence(self):
        kg = load_dataset("NELL", seed=42)
        means = {}
        for alpha in (0.10, 0.01):
            evaluator = KGAccuracyEvaluator(
                kg,
                SimpleRandomSampling(),
                AdaptiveHPD(),
                config=EvaluationConfig(alpha=alpha, epsilon=0.05),
            )
            means[alpha] = run_study(evaluator, repetitions=25, seed=0).triples.mean()
        assert means[0.01] > means[0.10]

    def test_ahpd_no_worse_than_wilson_high_precision(self):
        kg = load_dataset("YAGO", seed=42)
        config = EvaluationConfig(alpha=0.01, epsilon=0.05)
        wilson = run_study(
            KGAccuracyEvaluator(kg, SimpleRandomSampling(), WilsonInterval(), config=config),
            repetitions=25,
            seed=0,
        )
        ahpd = run_study(
            KGAccuracyEvaluator(kg, SimpleRandomSampling(), AdaptiveHPD(), config=config),
            repetitions=25,
            seed=0,
        )
        assert ahpd.cost_hours.mean() < wilson.cost_hours.mean()
