"""Runtime routing of the dynamic & partitioned audits.

Three contracts are pinned down here:

* **bit-identical sharding** — for ANY chunking (hypothesis-drawn, 1,
  ragged, oversized) and any worker count, the merged result of a
  ``DynamicAuditCell`` / ``PartitionedAuditCell`` equals the serial
  run exactly, including resume from a partial set of shard entries
  and the carried-prior round boundary inside dynamic streams;
* **golden regression** — the routed paths reproduce the committed
  pre-refactor serial outputs (``tests/fixtures/golden_*.json``)
  bit for bit, guarding the refactor itself, not just internal
  consistency;
* **no silent fallbacks** — methods that cannot take the executor path
  (no picklable payload) fall back with an explicit RuntimeWarning,
  and everything encodable (informative-prior aHPD included) routes.

Adaptive chunk sizing (``chunk_seconds`` / ``REPRO_CHUNK_SECONDS``)
rides the same guarantee: whatever chunk the pilot calibration picks,
results and cache tokens match every fixed chunking.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path

import pytest
from hypothesis import given, settings as hyp_settings
from hypothesis import strategies as st

from repro.evaluation.coverage import coverage_profile
from repro.evaluation.dynamic import DynamicAuditor
from repro.evaluation.partitioned import audit_by_predicate
from repro.exceptions import ValidationError
from repro.experiments.config import ExperimentSettings
from repro.intervals.agresti_coull import AgrestiCoullInterval
from repro.intervals.ahpd import AdaptiveHPD
from repro.intervals.clopper_pearson import ClopperPearsonInterval
from repro.intervals.et import ETCredibleInterval
from repro.intervals.hpd import HPDCredibleInterval
from repro.intervals.priors import KERMAN, UNINFORMATIVE_PRIORS, BetaPrior
from repro.intervals.transforms import ArcsineInterval, LogitInterval
from repro.intervals.wald import WaldInterval
from repro.intervals.wilson import WilsonInterval
from repro.kg.datasets import load_dataset
from repro.kg.evolution import UpdateBatchSpec, build_evolving_kg
from repro.runtime import (
    CellShard,
    CoverageCell,
    DynamicAuditCell,
    ParallelExecutor,
    PartitionedAuditCell,
    ResultStore,
    StudyPlan,
    build_method_from_payload,
    cache_token,
    cell_repetitions,
    is_shardable,
    method_payload,
    shard_ranges,
    shard_runner_for,
    shard_token,
)
from repro.sampling.twcs import TwoStageWeightedClusterSampling

FIXTURES = Path(__file__).parent / "fixtures"

#: The golden dynamic scenario (must stay in sync with the fixture).
GOLDEN_STREAM = dict(base_facts=900, base_accuracy=0.85, seed=7)
GOLDEN_UPDATES = ((450, 0.85, 0.3), (450, 0.5, 0.3))
GOLDEN_AUDIT_SEED = 123


def golden_snapshots():
    return build_evolving_kg(
        base_facts=GOLDEN_STREAM["base_facts"],
        base_accuracy=GOLDEN_STREAM["base_accuracy"],
        updates=[
            UpdateBatchSpec(
                num_facts=facts, accuracy=mu, intra_cluster_correlation=corr
            )
            for facts, mu, corr in GOLDEN_UPDATES
        ],
        seed=GOLDEN_STREAM["seed"],
    )


def dynamic_cell(**overrides) -> DynamicAuditCell:
    base = dict(
        key=("dyn",),
        label="dyn",
        method="aHPD",
        base_facts=600,
        base_accuracy=0.85,
        updates=((300, 0.8, 0.3),),
        stream_seed=5,
        strategy="TWCS:3",
        carryover=1.0,
        seed=17,
        repetitions=3,
    )
    base.update(overrides)
    return DynamicAuditCell(**base)


def partitioned_cell(**overrides) -> PartitionedAuditCell:
    base = dict(
        key=("part",),
        label="part",
        method="Wilson",
        dataset="NELL",
        epsilon=0.05,
        seed=11,
    )
    base.update(overrides)
    return PartitionedAuditCell(**base)


def plan_of(cells, repetitions=3, seed=0):
    settings = ExperimentSettings(repetitions=repetitions, seed=seed)
    return StudyPlan(settings=settings, cells=tuple(cells), name="audit-cells")


def assert_records_equal(a, b) -> None:
    assert a.round_index == b.round_index
    assert a.carried_prior == b.carried_prior
    assert a.posterior_prior == b.posterior_prior
    assert a.result == b.result


def assert_studies_equal(a, b) -> None:
    assert a.label == b.label
    assert len(a.streams) == len(b.streams)
    for stream_a, stream_b in zip(a.streams, b.streams):
        assert len(stream_a) == len(stream_b)
        for rec_a, rec_b in zip(stream_a, stream_b):
            assert_records_equal(rec_a, rec_b)


class TestDynamicAuditStudyAPI:
    def test_repetition_zero_reproduces_audit_stream(self):
        snapshots = golden_snapshots()
        auditor = DynamicAuditor(strategy=TwoStageWeightedClusterSampling(m=3))
        stream = auditor.audit_stream(snapshots, seed=GOLDEN_AUDIT_SEED)
        study = auditor.audit_study(
            snapshots, repetitions=2, seed=GOLDEN_AUDIT_SEED
        )
        assert len(study.streams) == 2
        for legacy, routed in zip(stream, study.streams[0]):
            assert_records_equal(legacy, routed)

    def test_rep_range_windows_concatenate_to_full(self):
        snapshots = golden_snapshots()[:2]
        auditor = DynamicAuditor(strategy=TwoStageWeightedClusterSampling(m=3))
        full = auditor.audit_study(snapshots, repetitions=3, seed=9)
        windows = [
            auditor.audit_study(snapshots, repetitions=3, seed=9, rep_range=w)
            for w in ((0, 1), (1, 3))
        ]
        stitched = tuple(s for part in windows for s in part.streams)
        assert stitched == full.streams

    def test_summary_arrays_shape(self):
        snapshots = golden_snapshots()[:2]
        auditor = DynamicAuditor(strategy=TwoStageWeightedClusterSampling(m=3))
        study = auditor.audit_study(snapshots, repetitions=2, seed=1)
        assert study.repetitions == 2
        assert study.rounds == 2
        for array in (study.triples, study.cost_hours, study.estimates, study.converged):
            assert array.shape == (2, 2)
        assert study.converged.dtype == bool
        assert (study.triples > 0).all()


class TestDynamicCellSharding:
    def test_registered_and_counted(self):
        settings = ExperimentSettings(repetitions=6)
        cell = dynamic_cell(repetitions=None)
        assert is_shardable(cell)
        assert cell_repetitions(cell, settings) == 6
        assert cell_repetitions(dynamic_cell(repetitions=4), settings) == 4

    @given(
        seed=st.integers(0, 2**16),
        repetitions=st.integers(2, 4),
        chunk=st.integers(1, 5),
    )
    @hyp_settings(max_examples=5, deadline=None)
    def test_property_any_chunking(self, seed, repetitions, chunk):
        cell = dynamic_cell(seed=seed, repetitions=repetitions)
        plan = plan_of([cell])
        serial = ParallelExecutor(workers=1).run(plan)
        chunked = ParallelExecutor(workers=1, chunk_size=chunk).run(plan)
        assert_studies_equal(serial.results[cell.key], chunked.results[cell.key])

    def test_parallel_workers_match_serial(self):
        cell = dynamic_cell(repetitions=4)
        plan = plan_of([cell])
        serial = ParallelExecutor(workers=1).run(plan)
        parallel = ParallelExecutor(workers=2, chunk_size=1).run(plan)
        assert_studies_equal(serial.results[cell.key], parallel.results[cell.key])

    def test_carried_prior_round_boundary_survives_sharding(self):
        # Within every repetition of the merged result, round i+1 must
        # carry exactly round i's distilled posterior — the boundary a
        # buggy reducer (reordering or re-running rounds) would break.
        cell = dynamic_cell(repetitions=4, updates=((300, 0.8, 0.3), (300, 0.7, 0.3)))
        plan = plan_of([cell])
        outcome = ParallelExecutor(workers=2, chunk_size=1).run(plan)
        study = outcome.results[cell.key]
        assert outcome.cells[0].shards == 4
        for stream in study.streams:
            assert [rec.round_index for rec in stream] == [0, 1, 2]
            assert stream[0].carried_prior is None
            for previous, record in zip(stream, stream[1:]):
                assert record.carried_prior == previous.posterior_prior

    def test_independent_streams_do_not_carry(self):
        cell = dynamic_cell(carryover=0.0, repetitions=2)
        plan = plan_of([cell])
        study = ParallelExecutor(workers=1, chunk_size=1).run(plan).results[cell.key]
        for stream in study.streams:
            assert all(rec.carried_prior is None for rec in stream)

    def test_resume_from_partial_shards(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        settings = ExperimentSettings(repetitions=3, seed=2)
        cell = dynamic_cell(repetitions=4)
        plan = StudyPlan(settings=settings, cells=(cell,), name="dyn-resume")
        ranges = shard_ranges(4, 1)
        group = cache_token(cell, settings)
        for index in (0, 2):  # non-contiguous subset, as a kill would leave
            start, stop = ranges[index]
            shard = CellShard(
                cell=cell, index=index, shards=len(ranges),
                rep_start=start, rep_stop=stop,
            )
            value = shard_runner_for(cell)(cell, settings, start, stop)
            store.save(
                shard_token(shard, settings, 4),
                {"value": value, "label": shard.label, "seconds": 1.0},
                group=group,
            )

        outcome = ParallelExecutor(workers=1, store=store, chunk_size=1).run(plan)
        entry = outcome.cells[0]
        assert entry.shards == 4
        assert entry.shards_cached == 2
        assert not entry.cached
        reference = ParallelExecutor(workers=1).run(plan)
        assert_studies_equal(reference.results[cell.key], outcome.results[cell.key])
        # The carried-prior boundary survives the resume too.
        for stream in outcome.results[cell.key].streams:
            for previous, record in zip(stream, stream[1:]):
                assert record.carried_prior == previous.posterior_prior


class TestDynamicGolden:
    @pytest.fixture(scope="class")
    def golden(self):
        return json.loads((FIXTURES / "golden_dynamic_audit.json").read_text())

    @staticmethod
    def assert_matches(record, expected) -> None:
        result = record.result
        assert record.round_index == expected["round_index"]
        assert result.mu_hat == expected["mu_hat"]
        assert result.interval.lower == expected["lower"]
        assert result.interval.upper == expected["upper"]
        assert result.n_annotated == expected["n_annotated"]
        assert result.n_triples == expected["n_triples"]
        assert result.n_entities == expected["n_entities"]
        assert result.n_units == expected["n_units"]
        assert result.iterations == expected["iterations"]
        assert result.converged == expected["converged"]
        assert result.cost_hours == expected["cost_hours"]
        posterior = expected["posterior_prior"]
        assert record.posterior_prior.a == posterior["a"]
        assert record.posterior_prior.b == posterior["b"]
        carried = expected["carried_prior"]
        if carried is None:
            assert record.carried_prior is None
        else:
            assert record.carried_prior.a == carried["a"]
            assert record.carried_prior.b == carried["b"]

    def test_serial_auditor_still_matches_prerefactor(self, golden):
        snapshots = golden_snapshots()
        for regime, carryover in (("carried", 1.0), ("independent", 0.0)):
            auditor = DynamicAuditor(
                strategy=TwoStageWeightedClusterSampling(m=3),
                carryover=carryover,
            )
            records = auditor.audit_stream(snapshots, seed=GOLDEN_AUDIT_SEED)
            for record, expected in zip(records, golden["regimes"][regime]):
                self.assert_matches(record, expected)

    @pytest.mark.parametrize("chunk_size", [None, 1, 2])
    def test_routed_cells_reproduce_prerefactor(self, golden, chunk_size):
        cells = tuple(
            DynamicAuditCell(
                key=(regime,),
                label=f"golden/{regime}",
                method="aHPD",
                base_facts=GOLDEN_STREAM["base_facts"],
                base_accuracy=GOLDEN_STREAM["base_accuracy"],
                updates=GOLDEN_UPDATES,
                stream_seed=GOLDEN_STREAM["seed"],
                strategy="TWCS:3",
                carryover=carryover,
                seed=GOLDEN_AUDIT_SEED,
                repetitions=3,
            )
            for regime, carryover in (("carried", 1.0), ("independent", 0.0))
        )
        plan = plan_of(cells)
        executor = ParallelExecutor(workers=2, chunk_size=chunk_size)
        results = executor.run(plan).results
        for regime in ("carried", "independent"):
            stream = results[(regime,)].streams[0]  # rep 0 == legacy stream
            assert len(stream) == len(golden["regimes"][regime])
            for record, expected in zip(stream, golden["regimes"][regime]):
                self.assert_matches(record, expected)


class TestPartitionedCellSharding:
    def test_partition_count_is_the_shard_dimension(self):
        settings = ExperimentSettings()
        cell = partitioned_cell()
        assert is_shardable(cell)
        assert cell_repetitions(cell, settings) == 10  # NELL's predicates

    @given(chunk=st.integers(1, 12))
    @hyp_settings(max_examples=6, deadline=None)
    def test_property_any_partition_chunking(self, chunk):
        cell = partitioned_cell()
        plan = plan_of([cell])
        serial = ParallelExecutor(workers=1).run(plan)
        chunked = ParallelExecutor(workers=1, chunk_size=chunk).run(plan)
        assert serial.results[cell.key] == chunked.results[cell.key]

    def test_parallel_workers_match_serial_function(self):
        kg = load_dataset("NELL", seed=42)
        serial = audit_by_predicate(kg, method=WilsonInterval(), rng=11)
        cell = partitioned_cell()
        plan = plan_of([cell])
        routed = ParallelExecutor(workers=2, chunk_size=3).run(plan).results[cell.key]
        assert routed == serial

    def test_budget_starved_audit_shards_identically(self):
        kg = load_dataset("NELL", seed=42)
        serial = audit_by_predicate(
            kg, method=WilsonInterval(), epsilon=0.02, max_triples=400, rng=11
        )
        cell = partitioned_cell(epsilon=0.02, max_triples=400)
        plan = plan_of([cell])
        routed = ParallelExecutor(workers=2, chunk_size=1).run(plan).results[cell.key]
        assert routed == serial
        assert sum(p.n_annotated for p in routed.partitions) == 400

    def test_resume_from_partial_partition_shards(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        settings = ExperimentSettings(repetitions=3, seed=0)
        cell = partitioned_cell()
        plan = StudyPlan(settings=settings, cells=(cell,), name="part-resume")
        ranges = shard_ranges(10, 3)
        group = cache_token(cell, settings)
        for index in (1, 3):
            start, stop = ranges[index]
            shard = CellShard(
                cell=cell, index=index, shards=len(ranges),
                rep_start=start, rep_stop=stop,
            )
            value = shard_runner_for(cell)(cell, settings, start, stop)
            store.save(
                shard_token(shard, settings, 10),
                {"value": value, "label": shard.label, "seconds": 1.0},
                group=group,
            )

        outcome = ParallelExecutor(workers=1, store=store, chunk_size=3).run(plan)
        entry = outcome.cells[0]
        assert entry.shards == 4
        assert entry.shards_cached == 2
        reference = ParallelExecutor(workers=1).run(plan)
        assert reference.results[cell.key] == outcome.results[cell.key]


class TestAuditByPredicateRouting:
    @pytest.fixture(scope="class")
    def kg(self):
        return load_dataset("NELL", seed=42)

    def test_executor_path_matches_serial(self, kg):
        serial = audit_by_predicate(kg, rng=11)
        routed = audit_by_predicate(
            kg,
            rng=11,
            dataset="NELL",
            executor=ParallelExecutor(workers=2, chunk_size=3),
        )
        assert routed == serial

    def test_informative_prior_method_routes(self, kg):
        method = AdaptiveHPD(
            priors=UNINFORMATIVE_PRIORS + (BetaPrior(85.0, 15.0, name="Similar"),)
        )
        serial = audit_by_predicate(kg, method=method, rng=3)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            routed = audit_by_predicate(
                kg,
                method=method,
                rng=3,
                dataset="NELL",
                executor=ParallelExecutor(workers=1, chunk_size=4),
            )
        assert routed == serial

    def test_executor_without_dataset_spec_raises(self, kg):
        with pytest.raises(ValidationError):
            audit_by_predicate(kg, rng=0, executor=ParallelExecutor(workers=1))

    def test_rng_none_warns_and_stays_serial(self, kg):
        # None means fresh OS entropy serially; a routed run would pin
        # an arbitrary seed (and a store would freeze it), so routing
        # must refuse loudly instead of silently changing semantics.
        with pytest.warns(RuntimeWarning, match="int seed"):
            result = audit_by_predicate(
                kg, dataset="NELL", executor=ParallelExecutor(workers=1)
            )
        assert result.partitions  # served by the serial loop

    def test_non_oracle_annotator_warns_and_stays_serial(self, kg):
        from repro.annotation.annotator import NoisyAnnotator

        with pytest.warns(RuntimeWarning, match="non-oracle annotator"):
            result = audit_by_predicate(
                kg,
                annotator=NoisyAnnotator(error_rate=0.1, seed=0),
                rng=0,
                dataset="NELL",
                executor=ParallelExecutor(workers=1),
            )
        assert result.partitions  # served by the serial loop

    def test_mismatched_dataset_spec_warns_and_stays_serial(self, kg):
        # YAGO rebuilds a different KG than the NELL object passed in;
        # routing would silently audit the wrong KG, so it must refuse.
        with pytest.warns(RuntimeWarning, match="different KG"):
            result = audit_by_predicate(
                kg, rng=0, dataset="YAGO", executor=ParallelExecutor(workers=1)
            )
        assert result == audit_by_predicate(kg, rng=0)


class TestPartitionedGolden:
    @pytest.fixture(scope="class")
    def golden(self):
        return json.loads((FIXTURES / "golden_partitioned_audit.json").read_text())

    @pytest.fixture(scope="class")
    def kg(self):
        return load_dataset("NELL", seed=42)

    @staticmethod
    def assert_matches(result, expected) -> None:
        assert len(result.partitions) == len(expected["partitions"])
        for audit, gold in zip(result.partitions, expected["partitions"]):
            assert audit.partition == gold["partition"]
            assert audit.weight == gold["weight"]
            assert audit.n_annotated == gold["n_annotated"]
            assert audit.mu_hat == gold["mu_hat"]
            assert audit.interval.lower == gold["lower"]
            assert audit.interval.upper == gold["upper"]
            assert audit.converged == gold["converged"]
        assert result.global_mu_hat == expected["global_mu_hat"]
        assert result.global_interval.lower == expected["global_lower"]
        assert result.global_interval.upper == expected["global_upper"]
        assert result.cost.hours == expected["cost_hours"]
        assert result.cost.num_triples == expected["cost_triples"]
        assert result.cost.num_entities == expected["cost_entities"]

    def test_serial_function_still_matches_prerefactor(self, golden, kg):
        self.assert_matches(
            audit_by_predicate(kg, alpha=0.05, epsilon=0.05, rng=11),
            golden["converged"],
        )
        self.assert_matches(
            audit_by_predicate(
                kg, alpha=0.05, epsilon=0.02, max_triples=400, rng=11
            ),
            golden["starved"],
        )

    @pytest.mark.parametrize("chunk_size", [None, 4])
    def test_routed_cell_reproduces_prerefactor(self, golden, chunk_size):
        cell = partitioned_cell(method="aHPD", epsilon=0.05, seed=11)
        plan = plan_of([cell])
        executor = ParallelExecutor(workers=2, chunk_size=chunk_size)
        self.assert_matches(
            executor.run(plan).results[cell.key], golden["converged"]
        )


class TestMethodPayload:
    STOCK = (
        WaldInterval(),
        WilsonInterval(),
        AgrestiCoullInterval(),
        ClopperPearsonInterval(),
        ArcsineInterval(),
        LogitInterval(),
        ETCredibleInterval(prior=KERMAN),
        HPDCredibleInterval(prior=BetaPrior(3.0, 2.0, name="Custom"), solver="scalar"),
        AdaptiveHPD(solver="slsqp"),
        AdaptiveHPD(
            priors=UNINFORMATIVE_PRIORS + (BetaPrior(80.0, 20.0, name="Similar"),)
        ),
    )

    @pytest.mark.parametrize("method", STOCK, ids=lambda m: m.name)
    def test_roundtrip(self, method):
        payload = method_payload(method)
        assert payload is not None
        rebuilt = build_method_from_payload(payload)
        assert type(rebuilt) is type(method)
        assert rebuilt.name == method.name
        assert getattr(rebuilt, "solver", None) == getattr(method, "solver", None)
        assert getattr(rebuilt, "prior", None) == getattr(method, "prior", None)
        assert getattr(rebuilt, "priors", None) == getattr(method, "priors", None)

    def test_payload_is_primitive_and_hashable(self):
        payload = method_payload(self.STOCK[-1])
        hash(payload)  # cells must stay hashable / cache-tokenable
        json.dumps(payload)  # primitives only

    def test_subclass_is_not_encodable(self):
        class Custom(WilsonInterval):
            name = "Custom"

        assert method_payload(Custom()) is None

    def test_unknown_payload_kind_raises(self):
        with pytest.raises(ValidationError):
            build_method_from_payload(("nope",))

    def test_payload_feeds_the_cache_token(self):
        settings = ExperimentSettings()
        bare = CoverageCell(key=("c",), label="c", method="aHPD")
        informative = CoverageCell(
            key=("c",),
            label="c",
            method="aHPD",
            method_payload=method_payload(self.STOCK[-1]),
        )
        assert cache_token(bare, settings) != cache_token(informative, settings)


class TestCoverageProfileNoSilentFallback:
    def test_informative_prior_ahpd_takes_executor_path(self):
        method = AdaptiveHPD(
            priors=UNINFORMATIVE_PRIORS + (BetaPrior(80.0, 20.0, name="Similar"),)
        )
        serial = coverage_profile(method, mus=[0.5, 0.9], n=20, repetitions=100, seed=3)
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # the routed path must not warn
            routed = coverage_profile(
                method,
                mus=[0.5, 0.9],
                n=20,
                repetitions=100,
                seed=3,
                executor=ParallelExecutor(workers=2),
            )
        assert [(r.coverage, r.mean_width) for r in routed] == [
            (r.coverage, r.mean_width) for r in serial
        ]

    def test_unencodable_method_warns_and_matches_serial(self):
        class Adhoc(WilsonInterval):
            name = "Adhoc"

        method = Adhoc()
        serial = coverage_profile(method, mus=[0.5], n=20, repetitions=50, seed=1)
        with pytest.warns(RuntimeWarning, match="no picklable"):
            fallback = coverage_profile(
                method,
                mus=[0.5],
                n=20,
                repetitions=50,
                seed=1,
                executor=ParallelExecutor(workers=1),
            )
        assert [(r.coverage, r.mean_width) for r in fallback] == [
            (r.coverage, r.mean_width) for r in serial
        ]


class TestAdaptiveChunkSizing:
    def coverage_plan(self, repetitions=200):
        settings = ExperimentSettings(repetitions=repetitions, seed=0)
        cell = CoverageCell(
            key=("cov",), label="cov", method="Wilson",
            mu=0.9, n=30, seed=5, repetitions=repetitions,
        )
        return StudyPlan(settings=settings, cells=(cell,), name="adaptive")

    def test_calibrated_results_match_any_fixed_chunking(self):
        plan = self.coverage_plan()
        key = plan.cells[0].key
        serial = ParallelExecutor(workers=1).run(plan)
        fixed = ParallelExecutor(workers=1, chunk_size=7).run(plan)
        adaptive = ParallelExecutor(workers=2, chunk_seconds=0.001).run(plan)
        assert serial.results[key] == fixed.results[key] == adaptive.results[key]
        assert adaptive.calibration is not None
        assert adaptive.calibration.chunk_size >= 1
        assert adaptive.calibration.cell_key == key
        assert "calibrated" in adaptive.summary()

    def test_calibrated_cache_token_is_chunking_independent(self, tmp_path):
        plan = self.coverage_plan()
        cell = plan.cells[0]
        store = ResultStore(tmp_path / "cache")
        first = ParallelExecutor(workers=1, store=store, chunk_seconds=0.001).run(plan)
        assert first.cache_misses == 1
        # Re-runs under a fixed chunking, no chunking, and a different
        # seconds target are all served from the same merged entry.
        for executor in (
            ParallelExecutor(workers=1, store=store, chunk_size=13),
            ParallelExecutor(workers=1, store=store),
            ParallelExecutor(workers=1, store=store, chunk_seconds=5.0),
        ):
            again = executor.run(plan)
            assert again.cache_hits == 1
            assert again.results[cell.key] == first.results[cell.key]
        assert store.contains(cache_token(cell, plan.settings))

    def test_env_chunk_seconds(self, monkeypatch):
        from repro.runtime import default_executor

        monkeypatch.setenv("REPRO_CHUNK_SECONDS", "0.25")
        monkeypatch.delenv("REPRO_CHUNK_SIZE", raising=False)
        assert default_executor().chunk_seconds == 0.25
        monkeypatch.setenv("REPRO_CHUNK_SECONDS", "nope")
        with pytest.raises(ValidationError):
            default_executor()
        monkeypatch.delenv("REPRO_CHUNK_SECONDS")
        assert default_executor().chunk_seconds is None

    def test_explicit_conflict_raises(self):
        with pytest.raises(ValidationError, match="mutually exclusive"):
            ParallelExecutor(chunk_size=5, chunk_seconds=1.0)

    def test_env_conflict_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHUNK_SIZE", "7")
        monkeypatch.setenv("REPRO_CHUNK_SECONDS", "1.0")
        with pytest.raises(ValidationError, match="both set"):
            ParallelExecutor()

    def test_explicit_argument_beats_the_other_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHUNK_SIZE", "7")
        monkeypatch.setenv("REPRO_CHUNK_SECONDS", "1.0")
        fixed = ParallelExecutor(chunk_size=5)
        assert fixed.chunk_size == 5 and fixed.chunk_seconds is None
        adaptive = ParallelExecutor(chunk_seconds=2.0)
        assert adaptive.chunk_seconds == 2.0 and adaptive.chunk_size is None

    def test_invalid_chunk_seconds(self):
        with pytest.raises(ValidationError):
            ParallelExecutor(chunk_seconds=0.0)
        with pytest.raises(ValidationError):
            ParallelExecutor(chunk_seconds=-1.0)

    def test_audit_cells_under_adaptive_chunking(self):
        # The new cell kinds honour chunk_seconds like any shardable
        # kind: whatever the pilot picks, numbers match the serial run.
        cells = (dynamic_cell(repetitions=3), partitioned_cell(key=("p2",), label="p2"))
        plan = plan_of(cells)
        serial = ParallelExecutor(workers=1).run(plan)
        adaptive = ParallelExecutor(workers=2, chunk_seconds=0.01).run(plan)
        assert_studies_equal(
            serial.results[("dyn",)], adaptive.results[("dyn",)]
        )
        assert serial.results[("p2",)] == adaptive.results[("p2",)]
