"""Public-API surface tests.

These guard the contract downstream users rely on: everything in
``__all__`` is importable, the quickstart in the package docstring runs,
and the core value types behave like values (hashable / comparable
where documented).
"""

from __future__ import annotations

import doctest

import pytest

import repro


class TestAllExports:
    def test_every_name_in_all_is_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    @pytest.mark.parametrize(
        "name",
        [
            "KnowledgeGraph",
            "SyntheticKG",
            "SimpleRandomSampling",
            "TwoStageWeightedClusterSampling",
            "StratifiedPredicateSampling",
            "WaldInterval",
            "WilsonInterval",
            "AdaptiveHPD",
            "KGAccuracyEvaluator",
            "SampleSizePlanner",
            "AnnotationLedger",
            "TripleIndex",
        ],
    )
    def test_key_classes_exported(self, name):
        assert name in repro.__all__

    def test_subpackages_importable(self):
        import repro.annotation
        import repro.estimators
        import repro.evaluation
        import repro.experiments
        import repro.intervals
        import repro.kg
        import repro.sampling
        import repro.stats

        for module in (
            repro.annotation,
            repro.estimators,
            repro.evaluation,
            repro.experiments,
            repro.intervals,
            repro.kg,
            repro.sampling,
            repro.stats,
        ):
            assert module.__doc__


class TestPackageDoctest:
    def test_quickstart_docstring_runs(self):
        results = doctest.testmod(repro, verbose=False)
        assert results.failed == 0
        assert results.attempted >= 2


class TestValueSemantics:
    def test_triple_usable_as_dict_key(self):
        t = repro.Triple("s", "p", "o")
        assert {t: 1}[repro.Triple("s", "p", "o")] == 1

    def test_interval_equality(self):
        a = repro.Interval(lower=0.1, upper=0.2, alpha=0.05, method="x")
        b = repro.Interval(lower=0.1, upper=0.2, alpha=0.05, method="x")
        assert a == b

    def test_priors_are_constants(self):
        assert repro.KERMAN.name == "Kerman"
        assert repro.UNINFORMATIVE_PRIORS[-1] is repro.UNIFORM
