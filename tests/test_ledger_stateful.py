"""Stateful property test of the annotation ledger (hypothesis).

The ledger's invariants must hold under *any* interleaving of records,
re-records, and persistence round trips — exactly what a stateful
hypothesis machine explores:

* counts equal the distinct triples / entities recorded so far;
* re-records are idempotent, conflicting labels always raise;
* cost is exactly the Eq. 12 price of the distinct sets;
* a TSV round trip reproduces the ledger state.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.annotation.ledger import AnnotationLedger
from repro.exceptions import AnnotationError


class LedgerMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.ledger = AnnotationLedger()
        self.model: dict[int, tuple[int, bool]] = {}

    @rule(
        triple=st.integers(0, 50),
        entity=st.integers(0, 15),
        label=st.booleans(),
    )
    def record(self, triple, entity, label):
        if triple in self.model:
            known_entity, known_label = self.model[triple]
            if known_label != label:
                try:
                    self.ledger.record(triple, known_entity, label)
                    raise AssertionError("conflicting label must raise")
                except AnnotationError:
                    return
            added = self.ledger.record(triple, known_entity, label)
            assert added is False
        else:
            added = self.ledger.record(triple, entity, label)
            assert added is True
            self.model[triple] = (entity, label)

    @rule()
    def round_trip(self, tmp_suffix=None):
        import tempfile
        from pathlib import Path

        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "ledger.tsv"
            self.ledger.to_tsv(path)
            resumed = AnnotationLedger.from_tsv(path)
        assert resumed.num_triples == self.ledger.num_triples
        assert resumed.num_entities == self.ledger.num_entities
        for triple, (_, label) in self.model.items():
            assert resumed.label_of(triple) == label

    @invariant()
    def counts_match_model(self):
        assert self.ledger.num_triples == len(self.model)
        assert self.ledger.num_entities == len(
            {entity for entity, _ in self.model.values()}
        )
        assert self.ledger.num_correct == sum(
            label for _, label in self.model.values()
        )

    @invariant()
    def cost_is_eq12(self):
        expected = self.ledger.num_entities * 45 + self.ledger.num_triples * 25
        assert self.ledger.cost.seconds == expected


LedgerMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestLedgerStateful = LedgerMachine.TestCase
