"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kg.datasets import load_dataset
from repro.kg.generators import generate_profiled_kg
from repro.kg.graph import KnowledgeGraph
from repro.kg.synthetic import SyntheticKG
from repro.kg.triple import Triple


@pytest.fixture
def rng():
    """A deterministic generator for per-test randomness."""
    return np.random.default_rng(1234)


@pytest.fixture
def tiny_kg() -> KnowledgeGraph:
    """A hand-built 6-triple KG with 3 entity clusters and mu = 2/3."""
    triples = [
        Triple("e:alice", "bornIn", "v:paris"),
        Triple("e:alice", "worksFor", "v:acme"),
        Triple("e:bob", "bornIn", "v:rome"),
        Triple("e:bob", "marriedTo", "e:alice"),
        Triple("e:bob", "worksFor", "v:acme"),
        Triple("e:carol", "bornIn", "v:berlin"),
    ]
    labels = [True, True, False, True, False, True]
    return KnowledgeGraph(triples, labels)


@pytest.fixture(scope="session")
def nell_kg() -> KnowledgeGraph:
    """The NELL dataset profile (session-scoped; generation is pure)."""
    return load_dataset("NELL", seed=42)


@pytest.fixture(scope="session")
def yago_kg() -> KnowledgeGraph:
    """The YAGO dataset profile."""
    return load_dataset("YAGO", seed=42)


@pytest.fixture(scope="session")
def medium_kg() -> KnowledgeGraph:
    """A mid-size profiled KG with accuracy 0.8 for framework tests."""
    return generate_profiled_kg(
        "medium", num_facts=3_000, num_clusters=1_000, accuracy=0.8, seed=7
    )


@pytest.fixture(scope="session")
def small_synthetic() -> SyntheticKG:
    """A lazily-labelled synthetic KG small enough for exhaustive checks."""
    return SyntheticKG(num_triples=50_000, num_clusters=2_500, accuracy=0.9, seed=3)
