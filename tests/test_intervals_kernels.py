"""Solver-kernel registry tests: selection, fallback, equivalence.

The kernel registry (:mod:`repro.intervals.kernels`) promises that the
kernel choice is *observation-free*: every kernel produces bounds that
are bit-identical or within 1e-12 of the NumPy reference, selection
degrades loudly (never silently), and the choice never reaches cache
identity.  These tests pin each clause; the native-vs-numpy property
runs only where the optional ``numba`` dependency is installed.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest
from hypothesis import given, settings as hyp_settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.intervals import hpd_bounds_batch
from repro.intervals import kernels as kernels_module
from repro.intervals.kernels import (
    KERNEL_NAMES,
    NumpyKernel,
    active_kernel,
    auto_fallback_info,
    get_kernel,
    kernel_status,
    native_available,
    use_kernel,
)
from repro.runtime.settings import resolve_kernel


class TestRegistry:
    def test_kernel_names_cover_the_knob(self):
        assert KERNEL_NAMES == ("auto", "numpy", "native")
        for name in ("auto", "numpy", "native"):
            assert resolve_kernel(name) == name

    def test_numpy_kernel_is_a_singleton(self):
        assert get_kernel("numpy") is get_kernel("numpy")
        assert isinstance(get_kernel("numpy"), NumpyKernel)
        assert get_kernel("numpy").name == "numpy"

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValidationError, match="kernel"):
            get_kernel("fortran")
        with pytest.raises(ValidationError, match="REPRO_KERNEL|kernel"):
            resolve_kernel("fortran")

    def test_native_unavailable_raises_loudly(self):
        if native_available():
            pytest.skip("numba present: native kernel is available")
        with pytest.raises(ValidationError, match="native"):
            get_kernel("native")

    def test_auto_degrades_with_a_warning_not_silence(self, monkeypatch):
        if native_available():
            kernel = get_kernel("auto")
            assert kernel.name == "native"
            assert auto_fallback_info("auto") is None
            return
        # The warning fires once per process; rearm it for this test.
        monkeypatch.setattr(kernels_module, "_AUTO_WARNED", False)
        with pytest.warns(RuntimeWarning, match="REPRO_KERNEL=auto"):
            kernel = get_kernel("auto")
        assert kernel.name == "numpy"
        info = auto_fallback_info("auto")
        assert info is not None
        assert info["requested"] == "auto"
        assert info["resolved"] == "numpy"
        assert info["reason"]

    def test_fallback_info_only_for_degraded_auto(self):
        assert auto_fallback_info("numpy") is None
        assert auto_fallback_info(None) is None

    def test_status_reports_availability(self):
        status = kernel_status()
        assert set(status) == {"active", "native_available", "native_error"}
        assert status["native_available"] == native_available()
        if not native_available():
            assert "numba" in status["native_error"]


class TestAmbientSelection:
    def test_use_kernel_installs_and_restores(self):
        kernel = get_kernel("numpy")
        with use_kernel(kernel):
            assert active_kernel() is kernel
            assert kernel_status()["active"] == "numpy"
        # Outside the block the ambient selection falls back to the
        # environment default (numpy in the test environment).
        assert active_kernel().name == "numpy"

    def test_use_kernel_accepts_names_and_none(self):
        with use_kernel("numpy") as kernel:
            assert kernel.name == "numpy"
            # None is a no-op install: the ambient kernel is unchanged.
            with use_kernel(None):
                assert active_kernel() is kernel

    def test_hpd_bounds_flow_through_the_ambient_kernel(self):
        a = np.array([3.5, 12.0, 80.5])
        b = np.array([2.5, 4.0, 20.5])
        direct = hpd_bounds_batch(a, b, 0.05)
        with use_kernel("numpy"):
            ambient = hpd_bounds_batch(a, b, 0.05)
        assert np.array_equal(direct[0], ambient[0])
        assert np.array_equal(direct[1], ambient[1])


@pytest.mark.skipif(not native_available(), reason="numba not installed")
class TestNativeEquivalence:
    """Native-vs-numpy pin, run only where the JIT kernel exists."""

    @given(
        tau=st.integers(min_value=0, max_value=40),
        n=st.integers(min_value=1, max_value=40),
        alpha=st.sampled_from([0.01, 0.05, 0.1]),
    )
    @hyp_settings(max_examples=60, deadline=None)
    def test_all_methods_agree_bitwise_or_1e12(self, tau, n, alpha):
        from repro.estimators.base import Evidence
        from repro.intervals import (
            AdaptiveHPD,
            AgrestiCoullInterval,
            ArcsineInterval,
            ClopperPearsonInterval,
            ETCredibleInterval,
            HPDCredibleInterval,
            LogitInterval,
            WaldInterval,
            WilsonInterval,
        )

        tau = min(tau, n)
        evidences = [Evidence.from_counts(tau, n)]
        methods = [
            WaldInterval(), WilsonInterval(), AgrestiCoullInterval(),
            ClopperPearsonInterval(), ArcsineInterval(), LogitInterval(),
            ETCredibleInterval(), HPDCredibleInterval(), AdaptiveHPD(),
        ]
        for method in methods:
            with use_kernel("numpy"):
                reference = method.compute_batch(evidences, alpha)
            with use_kernel("native"):
                native = method.compute_batch(evidences, alpha)
            np.testing.assert_allclose(
                native.lower, reference.lower, rtol=0.0, atol=1e-12
            )
            np.testing.assert_allclose(
                native.upper, reference.upper, rtol=0.0, atol=1e-12
            )
            assert native.labels == reference.labels

    def test_newton_interior_matches_reference(self):
        rng = np.random.default_rng(7)
        a = 1.0 + rng.uniform(0.5, 400.0, size=256)
        b = 1.0 + rng.uniform(0.5, 400.0, size=256)
        ref_l, ref_u, ref_f = get_kernel("numpy").newton_interior(a, b, 0.05)
        nat_l, nat_u, nat_f = get_kernel("native").newton_interior(a, b, 0.05)
        np.testing.assert_allclose(nat_l, ref_l, rtol=0.0, atol=1e-12)
        np.testing.assert_allclose(nat_u, ref_u, rtol=0.0, atol=1e-12)
        assert np.array_equal(nat_f, ref_f)


class TestEnvironmentResolution:
    def test_env_knob_feeds_active_kernel(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "numpy")
        assert resolve_kernel(None) == "numpy"
        assert active_kernel().name == "numpy"
        monkeypatch.setenv("REPRO_KERNEL", "not-a-kernel")
        with pytest.raises(ValidationError):
            resolve_kernel(None)

    def test_kernel_never_enters_cache_identity(self):
        # The cache token is a pure function of ExperimentSettings and
        # the cell spec; neither knows the kernel knob exists.
        from repro.experiments.config import ExperimentSettings

        settings = ExperimentSettings(repetitions=3, seed=0)
        assert not hasattr(settings, "kernel")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with use_kernel("auto"):
                pass  # installing any kernel never touches settings
        assert not hasattr(settings, "kernel")
