"""Unit tests for the adaptive HPD algorithm (paper Algorithm 1)."""

from __future__ import annotations

import pytest

from repro.estimators.base import Evidence
from repro.exceptions import ValidationError
from repro.intervals.ahpd import AdaptiveHPD
from repro.intervals.hpd import HPDCredibleInterval
from repro.intervals.priors import JEFFREYS, KERMAN, UNIFORM, BetaPrior


class TestCompute:
    def test_picks_shortest_across_priors(self):
        ahpd = AdaptiveHPD()
        ev = Evidence.from_counts(27, 30)
        chosen = ahpd.compute(ev, 0.05)
        for prior in (KERMAN, JEFFREYS, UNIFORM):
            single = HPDCredibleInterval(prior=prior).compute(ev, 0.05)
            assert chosen.width <= single.width + 1e-12

    def test_method_label_carries_prior(self):
        ahpd = AdaptiveHPD()
        interval = ahpd.compute(Evidence.from_counts(27, 30), 0.05)
        assert interval.method.startswith("aHPD[")

    def test_compute_all_has_every_prior(self):
        ahpd = AdaptiveHPD()
        intervals = ahpd.compute_all(Evidence.from_counts(20, 30), 0.05)
        assert set(intervals) == {"Kerman", "Jeffreys", "Uniform"}

    def test_kerman_wins_extreme_region(self):
        # Fig. 3: Kerman is optimal near the accuracy boundaries.
        ahpd = AdaptiveHPD()
        winner = ahpd.winning_prior(Evidence.from_counts(30, 30), 0.05)
        assert winner.name == "Kerman"

    def test_uniform_wins_central_region(self):
        # Fig. 3: Uniform is optimal in the centre.
        ahpd = AdaptiveHPD()
        winner = ahpd.winning_prior(Evidence.from_counts(15, 30), 0.05)
        assert winner.name == "Uniform"

    def test_jeffreys_never_wins_sweep(self):
        # Sec. 4.4: Jeffreys is never the most efficient choice.
        ahpd = AdaptiveHPD()
        for tau in range(0, 31):
            winner = ahpd.winning_prior(Evidence.from_counts(tau, 30), 0.05)
            assert winner.name != "Jeffreys", f"Jeffreys won at tau={tau}"


class TestPriorSets:
    def test_informative_priors_accepted(self):
        priors = (BetaPrior(80, 20, name="A"), BetaPrior(90, 10, name="B"))
        ahpd = AdaptiveHPD(priors=priors)
        interval = ahpd.compute(Evidence.from_counts(27, 30), 0.05)
        assert interval.method in ("aHPD[A]", "aHPD[B]")

    def test_informative_prior_shortens_interval(self):
        # Example 2's premise: a good informative prior beats the trio.
        ev = Evidence.from_counts(26, 30)
        uninformative = AdaptiveHPD().compute(ev, 0.05)
        informed = AdaptiveHPD(
            priors=(KERMAN, JEFFREYS, UNIFORM, BetaPrior(85, 15, name="I"))
        ).compute(ev, 0.05)
        assert informed.width <= uninformative.width

    def test_single_prior_allowed(self):
        ahpd = AdaptiveHPD(priors=(JEFFREYS,))
        single = HPDCredibleInterval(prior=JEFFREYS).compute(
            Evidence.from_counts(20, 30), 0.05
        )
        adaptive = ahpd.compute(Evidence.from_counts(20, 30), 0.05)
        assert adaptive.lower == pytest.approx(single.lower)
        assert adaptive.upper == pytest.approx(single.upper)

    def test_rejects_empty_priors(self):
        with pytest.raises(ValidationError):
            AdaptiveHPD(priors=())

    def test_rejects_non_prior(self):
        with pytest.raises(ValidationError):
            AdaptiveHPD(priors=("Jeffreys",))  # type: ignore[arg-type]

    def test_rejects_unknown_solver(self):
        with pytest.raises(ValidationError):
            AdaptiveHPD(solver="bogus")

    def test_repr_lists_priors(self):
        text = repr(AdaptiveHPD())
        assert "Kerman" in text and "Uniform" in text


class TestLimitingCases:
    def test_all_correct_uses_limiting_case(self):
        interval = AdaptiveHPD().compute(Evidence.from_counts(30, 30), 0.05)
        assert interval.upper == 1.0

    def test_all_incorrect_uses_limiting_case(self):
        interval = AdaptiveHPD().compute(Evidence.from_counts(0, 30), 0.05)
        assert interval.lower == 0.0
