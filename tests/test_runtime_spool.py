"""Spool-worker tests: the detached half of the spool backend.

:func:`repro.runtime.backends.spool.run_worker` is the loop behind
``python -m repro worker <spool-dir>``.  These tests drive it in-process
(threads standing in for other terminals) and once as a real detached
subprocess, checking the full multi-process dispatch path: task files
leased by atomic rename, results written atomically, bit-identical
values, and a queue that ends empty.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
from pathlib import Path

import numpy as np

from repro.experiments.config import ExperimentSettings
from repro.runtime import (
    ParallelExecutor,
    SpoolBackend,
    StudyCell,
    StudyPlan,
    run_worker,
)
from repro.cli import main


from dataclasses import dataclass

from repro.runtime import CellSpec, register_cell_runner


@dataclass(frozen=True)
class LeaseStealingCell(CellSpec):
    """Test-only cell whose runner deletes every lease mid-execution,
    simulating a reclaim/close sweep happening while a claimant runs."""

    spool_root: str = ""


@register_cell_runner(LeaseStealingCell)
def _run_lease_stealing(cell, settings):
    for lease in (Path(cell.spool_root) / "claimed").glob("*.task"):
        lease.unlink()
    return "computed"


def study_cell(method: str = "Wilson") -> StudyCell:
    return StudyCell(
        key=("NELL", "SRS", method),
        label=f"NELL/SRS/{method}",
        method=method,
        dataset="NELL",
        strategy="SRS",
        seed_stream=(5,),
    )


def small_plan(repetitions: int = 3) -> StudyPlan:
    settings = ExperimentSettings(repetitions=repetitions, seed=0)
    return StudyPlan(
        settings=settings,
        cells=(study_cell("Wilson"), study_cell("aHPD")),
        name="spool-worker",
    )


def assert_studies_equal(a, b) -> None:
    assert np.array_equal(a.triples, b.triples)
    assert np.array_equal(a.estimates, b.estimates)
    assert np.array_equal(a.converged, b.converged)


class TestRunWorker:
    def test_worker_thread_executes_all_tasks(self, tmp_path):
        # participate=False forces every unit through the worker, so
        # this proves the worker path end to end (not the scheduler
        # quietly doing the work itself).
        spool_dir = tmp_path / "q"
        worker = threading.Thread(
            target=run_worker,
            kwargs=dict(root=spool_dir, poll_interval=0.01, idle_timeout=1.0),
        )
        worker.start()
        try:
            plan = small_plan()
            backend = SpoolBackend(spool_dir, participate=False)
            outcome = ParallelExecutor(backend=backend).run(plan)
        finally:
            worker.join(timeout=30)
        assert not worker.is_alive()
        assert outcome.backend == "spool"
        assert outcome.cache_misses == len(plan)
        reference = ParallelExecutor(workers=1).run(plan)
        for key in reference.results:
            assert_studies_equal(reference.results[key], outcome.results[key])
        assert list((spool_dir / "tasks").iterdir()) == []
        assert list((spool_dir / "results").iterdir()) == []

    def test_max_tasks_stops_the_loop(self, tmp_path):
        spool_dir = tmp_path / "q"
        settings = ExperimentSettings(repetitions=2, seed=0)
        backend = SpoolBackend(spool_dir, participate=False)
        backend.open(workers=1, tasks=2, settings=settings)
        futures = [
            backend.submit(study_cell("Wilson"), settings),
            backend.submit(study_cell("aHPD"), settings),
        ]
        executed = run_worker(spool_dir, poll_interval=0.01, max_tasks=1)
        assert executed == 1
        done = [future for future in futures if future.done()]
        assert len(done) == 1
        backend.close()

    def test_idle_timeout_returns_zero_on_empty_queue(self, tmp_path):
        executed = run_worker(
            tmp_path / "empty", poll_interval=0.01, idle_timeout=0.05
        )
        assert executed == 0

    def test_claim_restarts_the_lease_clock(self, tmp_path):
        # os.rename preserves mtime, so without a re-stamp the stale-
        # lease reclaim would measure time-in-queue instead of
        # time-in-execution and steal live leases from busy workers.
        import time as _time

        from repro.runtime.backends.spool import _claim, _ensure_layout

        root = tmp_path / "q"
        _ensure_layout(root)
        task = root / "tasks" / "aaaa-000000.task"
        task.write_bytes(b"payload")
        stale = _time.time() - 3_600.0
        os.utime(task, (stale, stale))  # submitted an hour ago
        claimed = _claim(root, task)
        assert claimed is not None
        assert _time.time() - claimed.stat().st_mtime < 60.0

    def test_result_dropped_when_lease_vanishes_mid_execution(self, tmp_path):
        # A claimant whose lease was reclaimed (or swept by the owning
        # run's close) while it was executing must drop its result:
        # whoever holds the task now owns the answer.
        from repro.runtime.backends.spool import _drain_one

        spool_root = tmp_path / "q"
        settings = ExperimentSettings(repetitions=2, seed=0)
        backend = SpoolBackend(spool_root, participate=False)
        backend.open(workers=1, tasks=1, settings=settings)
        backend.submit(
            LeaseStealingCell(
                key=("steal",),
                label="steal",
                method="-",
                spool_root=str(spool_root),
            ),
            settings,
        )
        messages = []
        assert _drain_one(spool_root, set(), log=messages.append) is None
        assert list((spool_root / "results").iterdir()) == []
        assert any("lease was reclaimed" in message for message in messages)
        backend.close()

    def test_close_sweeps_abandoned_leases(self, tmp_path):
        # An aborted run must not strand its claimed/ leases in a
        # shared spool directory: close sweeps them alongside tasks
        # and results.
        spool_root = tmp_path / "q"
        settings = ExperimentSettings(repetitions=2, seed=0)
        backend = SpoolBackend(spool_root, participate=False)
        backend.open(workers=1, tasks=1, settings=settings)
        backend.submit(study_cell(), settings)
        task_file = next((spool_root / "tasks").glob("*.task"))
        os.rename(task_file, spool_root / "claimed" / task_file.name)
        backend.close()
        assert list((spool_root / "claimed").iterdir()) == []
        assert list((spool_root / "tasks").iterdir()) == []

    def test_worker_skips_valid_pickle_that_is_not_a_task(self, tmp_path):
        # A .task file that unpickles into a non-payload (version skew,
        # stray file) must poison-and-requeue like a corrupt one — not
        # crash the worker loop.
        import pickle

        spool_dir = tmp_path / "q"
        (spool_dir / "tasks").mkdir(parents=True)
        (spool_dir / "tasks" / "aaaa-000000.task").write_bytes(
            pickle.dumps("not a payload dict")
        )
        settings = ExperimentSettings(repetitions=2, seed=0)
        backend = SpoolBackend(spool_dir, participate=False)
        backend.open(workers=1, tasks=1, settings=settings)
        future = backend.submit(study_cell(), settings)
        messages = []
        executed = run_worker(
            spool_dir, poll_interval=0.01, idle_timeout=0.2, log=messages.append
        )
        assert executed == 1
        assert future.done()
        assert any("cannot deserialise" in message for message in messages)
        assert (spool_dir / "tasks" / "aaaa-000000.task").exists()
        backend.close()

    def test_worker_skips_corrupt_tasks_and_serves_good_ones(self, tmp_path):
        spool_dir = tmp_path / "q"
        (spool_dir / "tasks").mkdir(parents=True)
        (spool_dir / "tasks" / "aaaa-000000.task").write_bytes(b"junk")
        settings = ExperimentSettings(repetitions=2, seed=0)
        backend = SpoolBackend(spool_dir, participate=False)
        backend.open(workers=1, tasks=1, settings=settings)
        future = backend.submit(study_cell(), settings)
        messages = []
        executed = run_worker(
            spool_dir, poll_interval=0.01, idle_timeout=0.2, log=messages.append
        )
        assert executed == 1
        assert future.done()
        assert any("cannot deserialise" in message for message in messages)
        # The corrupt file is back in the queue, not deleted or fatal.
        assert (spool_dir / "tasks" / "aaaa-000000.task").exists()
        backend.close()


class TestWorkerCli:
    def test_worker_subcommand_serves_spooled_tasks(self, tmp_path, capsys):
        spool_dir = tmp_path / "q"
        settings = ExperimentSettings(repetitions=2, seed=0)
        backend = SpoolBackend(spool_dir, participate=False)
        backend.open(workers=1, tasks=1, settings=settings)
        future = backend.submit(study_cell(), settings)
        assert (
            main(
                [
                    "worker",
                    str(spool_dir),
                    "--poll",
                    "0.01",
                    "--idle-timeout",
                    "0.2",
                    "--quiet",
                ]
            )
            == 0
        )
        assert "executed 1 task(s)" in capsys.readouterr().out
        assert future.done()
        backend.close()

    def test_worker_subcommand_spool_dir_from_env(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_SPOOL_DIR", str(tmp_path / "envq"))
        assert main(["worker", "--idle-timeout", "0.05", "--quiet"]) == 0
        assert "executed 0 task(s)" in capsys.readouterr().out

    def test_detached_worker_subprocess_end_to_end(self, tmp_path):
        # The real thing: a detached `python -m repro worker` process in
        # another interpreter leases, executes, and answers the tasks of
        # a participate=False scheduler — multi-process dispatch with
        # bit-identical results.
        spool_dir = tmp_path / "q"
        src = Path(__file__).resolve().parents[1] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = f"{src}{os.pathsep}" + env.get("PYTHONPATH", "")
        worker = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "worker",
                str(spool_dir),
                "--poll",
                "0.02",
                "--idle-timeout",
                "5",
                "--quiet",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            plan = small_plan()
            backend = SpoolBackend(spool_dir, participate=False)
            outcome = ParallelExecutor(backend=backend).run(plan)
        finally:
            out, err = worker.communicate(timeout=60)
        assert worker.returncode == 0, err
        assert "executed 2 task(s)" in out
        reference = ParallelExecutor(workers=1).run(plan)
        for key in reference.results:
            assert_studies_equal(reference.results[key], outcome.results[key])
