"""Spool-worker tests: the detached half of the spool backend.

:func:`repro.runtime.backends.spool.run_worker` is the loop behind
``python -m repro worker <spool-dir>``.  These tests drive it in-process
(threads standing in for other terminals) and once as a real detached
subprocess, checking the full multi-process dispatch path: task files
leased by atomic rename, results written atomically, bit-identical
values, and a queue that ends empty.
"""

from __future__ import annotations

import json
import os
import pickle
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.experiments.config import ExperimentSettings
from repro.runtime import (
    ParallelExecutor,
    SpoolBackend,
    StudyCell,
    StudyPlan,
    run_worker,
)
from repro.runtime.backends.spool import (
    SpoolTaskError,
    _claim,
    _ensure_layout,
    _requeue,
)
from repro.cli import main
from spool_crash_cells import SlowCell, starts_recorded


from dataclasses import dataclass

from repro.runtime import CellSpec, register_cell_runner


@dataclass(frozen=True)
class LeaseStealingCell(CellSpec):
    """Test-only cell whose runner deletes every lease mid-execution,
    simulating a reclaim/close sweep happening while a claimant runs."""

    spool_root: str = ""


@register_cell_runner(LeaseStealingCell)
def _run_lease_stealing(cell, settings):
    for lease in (Path(cell.spool_root) / "claimed").glob("*.task"):
        lease.unlink()
    return "computed"


def study_cell(method: str = "Wilson") -> StudyCell:
    return StudyCell(
        key=("NELL", "SRS", method),
        label=f"NELL/SRS/{method}",
        method=method,
        dataset="NELL",
        strategy="SRS",
        seed_stream=(5,),
    )


def small_plan(repetitions: int = 3) -> StudyPlan:
    settings = ExperimentSettings(repetitions=repetitions, seed=0)
    return StudyPlan(
        settings=settings,
        cells=(study_cell("Wilson"), study_cell("aHPD")),
        name="spool-worker",
    )


def assert_studies_equal(a, b) -> None:
    assert np.array_equal(a.triples, b.triples)
    assert np.array_equal(a.estimates, b.estimates)
    assert np.array_equal(a.converged, b.converged)


class TestRunWorker:
    def test_worker_thread_executes_all_tasks(self, tmp_path):
        # participate=False forces every unit through the worker, so
        # this proves the worker path end to end (not the scheduler
        # quietly doing the work itself).
        spool_dir = tmp_path / "q"
        worker = threading.Thread(
            target=run_worker,
            kwargs=dict(root=spool_dir, poll_interval=0.01, idle_timeout=1.0),
        )
        worker.start()
        try:
            plan = small_plan()
            backend = SpoolBackend(spool_dir, participate=False)
            outcome = ParallelExecutor(backend=backend).run(plan)
        finally:
            worker.join(timeout=30)
        assert not worker.is_alive()
        assert outcome.backend == "spool"
        assert outcome.cache_misses == len(plan)
        reference = ParallelExecutor(workers=1).run(plan)
        for key in reference.results:
            assert_studies_equal(reference.results[key], outcome.results[key])
        assert list((spool_dir / "tasks").iterdir()) == []
        assert list((spool_dir / "results").iterdir()) == []

    def test_max_tasks_stops_the_loop(self, tmp_path):
        spool_dir = tmp_path / "q"
        settings = ExperimentSettings(repetitions=2, seed=0)
        backend = SpoolBackend(spool_dir, participate=False)
        backend.open(workers=1, tasks=2, settings=settings)
        futures = [
            backend.submit(study_cell("Wilson"), settings),
            backend.submit(study_cell("aHPD"), settings),
        ]
        executed = run_worker(spool_dir, poll_interval=0.01, max_tasks=1)
        assert executed == 1
        done = [future for future in futures if future.done()]
        assert len(done) == 1
        backend.close()

    def test_idle_timeout_returns_zero_on_empty_queue(self, tmp_path):
        executed = run_worker(
            tmp_path / "empty", poll_interval=0.01, idle_timeout=0.05
        )
        assert executed == 0

    def test_claim_restarts_the_lease_clock(self, tmp_path):
        # os.rename preserves mtime, so without a re-stamp the stale-
        # lease reclaim would measure time-in-queue instead of
        # time-in-execution and steal live leases from busy workers.
        import time as _time

        from repro.runtime.backends.spool import _claim, _ensure_layout

        root = tmp_path / "q"
        _ensure_layout(root)
        task = root / "tasks" / "aaaa-000000.task"
        task.write_bytes(b"payload")
        stale = _time.time() - 3_600.0
        os.utime(task, (stale, stale))  # submitted an hour ago
        claimed = _claim(root, task)
        assert claimed is not None
        assert _time.time() - claimed.stat().st_mtime < 60.0

    def test_result_dropped_when_lease_vanishes_mid_execution(self, tmp_path):
        # A claimant whose lease was reclaimed (or swept by the owning
        # run's close) while it was executing must drop its result:
        # whoever holds the task now owns the answer.
        from repro.runtime.backends.spool import _drain_one

        spool_root = tmp_path / "q"
        settings = ExperimentSettings(repetitions=2, seed=0)
        backend = SpoolBackend(spool_root, participate=False)
        backend.open(workers=1, tasks=1, settings=settings)
        backend.submit(
            LeaseStealingCell(
                key=("steal",),
                label="steal",
                method="-",
                spool_root=str(spool_root),
            ),
            settings,
        )
        messages = []
        assert _drain_one(spool_root, set(), log=messages.append) is None
        assert list((spool_root / "results").iterdir()) == []
        assert any("lease was reclaimed" in message for message in messages)
        backend.close()

    def test_close_sweeps_abandoned_leases(self, tmp_path):
        # An aborted run must not strand its claimed/ leases in a
        # shared spool directory: close sweeps them alongside tasks
        # and results.
        spool_root = tmp_path / "q"
        settings = ExperimentSettings(repetitions=2, seed=0)
        backend = SpoolBackend(spool_root, participate=False)
        backend.open(workers=1, tasks=1, settings=settings)
        backend.submit(study_cell(), settings)
        task_file = next((spool_root / "tasks").glob("*.task"))
        os.rename(task_file, spool_root / "claimed" / task_file.name)
        backend.close()
        assert list((spool_root / "claimed").iterdir()) == []
        assert list((spool_root / "tasks").iterdir()) == []

    def test_worker_skips_valid_pickle_that_is_not_a_task(self, tmp_path):
        # A .task file that unpickles into a non-payload (version skew,
        # stray file) must poison-and-requeue like a corrupt one — not
        # crash the worker loop.
        import pickle

        spool_dir = tmp_path / "q"
        (spool_dir / "tasks").mkdir(parents=True)
        (spool_dir / "tasks" / "aaaa-000000.task").write_bytes(
            pickle.dumps("not a payload dict")
        )
        settings = ExperimentSettings(repetitions=2, seed=0)
        backend = SpoolBackend(spool_dir, participate=False)
        backend.open(workers=1, tasks=1, settings=settings)
        future = backend.submit(study_cell(), settings)
        messages = []
        executed = run_worker(
            spool_dir, poll_interval=0.01, idle_timeout=0.2, log=messages.append
        )
        assert executed == 1
        assert future.done()
        assert any("cannot deserialise" in message for message in messages)
        assert (spool_dir / "tasks" / "aaaa-000000.task").exists()
        backend.close()

    def test_worker_skips_corrupt_tasks_and_serves_good_ones(self, tmp_path):
        spool_dir = tmp_path / "q"
        (spool_dir / "tasks").mkdir(parents=True)
        (spool_dir / "tasks" / "aaaa-000000.task").write_bytes(b"junk")
        settings = ExperimentSettings(repetitions=2, seed=0)
        backend = SpoolBackend(spool_dir, participate=False)
        backend.open(workers=1, tasks=1, settings=settings)
        future = backend.submit(study_cell(), settings)
        messages = []
        executed = run_worker(
            spool_dir, poll_interval=0.01, idle_timeout=0.2, log=messages.append
        )
        assert executed == 1
        assert future.done()
        assert any("cannot deserialise" in message for message in messages)
        # The corrupt file is back in the queue, not deleted or fatal.
        assert (spool_dir / "tasks" / "aaaa-000000.task").exists()
        backend.close()


class TestWorkerCli:
    def test_worker_subcommand_serves_spooled_tasks(self, tmp_path, capsys):
        spool_dir = tmp_path / "q"
        settings = ExperimentSettings(repetitions=2, seed=0)
        backend = SpoolBackend(spool_dir, participate=False)
        backend.open(workers=1, tasks=1, settings=settings)
        future = backend.submit(study_cell(), settings)
        assert (
            main(
                [
                    "worker",
                    str(spool_dir),
                    "--poll",
                    "0.01",
                    "--idle-timeout",
                    "0.2",
                    "--quiet",
                ]
            )
            == 0
        )
        assert "executed 1 task(s)" in capsys.readouterr().out
        assert future.done()
        backend.close()

    def test_worker_subcommand_spool_dir_from_env(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_SPOOL_DIR", str(tmp_path / "envq"))
        assert main(["worker", "--idle-timeout", "0.05", "--quiet"]) == 0
        assert "executed 0 task(s)" in capsys.readouterr().out

    def test_detached_worker_subprocess_end_to_end(self, tmp_path):
        # The real thing: a detached `python -m repro worker` process in
        # another interpreter leases, executes, and answers the tasks of
        # a participate=False scheduler — multi-process dispatch with
        # bit-identical results.
        spool_dir = tmp_path / "q"
        src = Path(__file__).resolve().parents[1] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = f"{src}{os.pathsep}" + env.get("PYTHONPATH", "")
        worker = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "worker",
                str(spool_dir),
                "--poll",
                "0.02",
                "--idle-timeout",
                "5",
                "--quiet",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            plan = small_plan()
            backend = SpoolBackend(spool_dir, participate=False)
            outcome = ParallelExecutor(backend=backend).run(plan)
        finally:
            out, err = worker.communicate(timeout=60)
        assert worker.returncode == 0, err
        assert "executed 2 task(s)" in out
        reference = ParallelExecutor(workers=1).run(plan)
        for key in reference.results:
            assert_studies_equal(reference.results[key], outcome.results[key])


# ----------------------------------------------------------------------
# Fault-tolerance hardening: delivery counts, dead letters, heartbeats
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class BoomCell(CellSpec):
    pass


@register_cell_runner(BoomCell)
def _run_boom(cell, settings):
    raise ValidationError("boom in a worker")


def _settings(repetitions: int = 2) -> ExperimentSettings:
    return ExperimentSettings(repetitions=repetitions, seed=0)


class TestSpoolFutureGuard:
    def test_result_before_done_raises_clearly(self, tmp_path):
        backend = SpoolBackend(tmp_path / "q", participate=False)
        backend.open(workers=1, tasks=1, settings=_settings())
        future = backend.submit(study_cell(), _settings())
        with pytest.raises(RuntimeError, match=r"result\(\) before done\(\)"):
            future.result()
        backend.close()

    def test_worker_side_traceback_rides_the_exception(self, tmp_path):
        spool_dir = tmp_path / "q"
        backend = SpoolBackend(spool_dir, participate=False)
        backend.open(workers=1, tasks=1, settings=_settings())
        future = backend.submit(
            BoomCell(key=("boom",), label="boom", method="-"), _settings()
        )
        run_worker(spool_dir, poll_interval=0.01, idle_timeout=0.2)
        assert future.done()
        with pytest.raises(ValidationError, match="boom in a worker") as info:
            future.result()
        attached = getattr(info.value, "__repro_traceback__", None)
        assert attached is not None and "boom in a worker" in attached
        backend.close()


class TestDeadLetter:
    def test_requeue_stamps_the_delivery_count(self, tmp_path):
        root = tmp_path / "q"
        _ensure_layout(root)
        payload = {
            "id": "aaaa-000000",
            "task": study_cell(),
            "settings": _settings(),
            "deliveries": 0,
        }
        task_path = root / "tasks" / "aaaa-000000.task"
        task_path.write_bytes(pickle.dumps(payload))
        claimed = _claim(root, task_path)
        _requeue(root, claimed, 5, "test requeue")
        assert not claimed.exists()
        requeued = pickle.loads(task_path.read_bytes())
        assert requeued["deliveries"] == 1

    def test_unreadable_claim_requeues_unchanged(self, tmp_path):
        root = tmp_path / "q"
        _ensure_layout(root)
        task_path = root / "tasks" / "bbbb-000000.task"
        task_path.write_bytes(b"junk the requeue cannot stamp")
        claimed = _claim(root, task_path)
        _requeue(root, claimed, 5, "test requeue")
        # Same name, same bytes, back in the queue — never buried on a
        # payload nobody could read a delivery count from.
        assert task_path.read_bytes() == b"junk the requeue cannot stamp"

    def test_redelivery_cap_buries_the_task_with_diagnostics(self, tmp_path):
        root = tmp_path / "q"
        backend = SpoolBackend(
            root, participate=False, reclaim_seconds=0.0, redeliver_cap=2
        )
        backend.open(workers=1, tasks=1, settings=_settings())
        future = backend.submit(study_cell(), _settings())
        task_id = future.task_id
        for _ in range(3):  # three stale leases: 2 requeues, then burial
            claimed = _claim(root, root / "tasks" / f"{task_id}.task")
            assert claimed is not None
            stale = time.time() - 60.0
            os.utime(claimed, (stale, stale))
            backend._reclaim_stale({future})
        assert (root / "dead" / f"{task_id}.task").exists()
        diagnostics = json.loads((root / "dead" / f"{task_id}.json").read_text())
        assert diagnostics["label"] == "NELL/SRS/Wilson"
        assert diagnostics["deliveries"] == 3
        assert "redelivery cap" in diagnostics["reason"]
        assert "tasks/" in diagnostics["requeue"]
        # The submitting run still gets an answer: an error result.
        assert future.done()
        with pytest.raises(SpoolTaskError, match="dead"):
            future.result()
        backend.close()
        # close() sweeps tasks/claimed/results but leaves the dead
        # letter for inspection.
        assert (root / "dead" / f"{task_id}.task").exists()


class TestHeartbeat:
    def test_heartbeat_protects_long_tasks_from_reclaim(self, tmp_path):
        spool_dir = tmp_path / "q"
        marker = tmp_path / "starts"
        cell = SlowCell(
            key=("slow",),
            label="slow",
            method="-",
            marker_dir=str(marker),
            sleep_seconds=0.8,
        )
        plan = StudyPlan(settings=_settings(), cells=(cell,), name="heartbeat")
        worker = threading.Thread(
            target=run_worker,
            kwargs=dict(
                root=spool_dir,
                poll_interval=0.01,
                idle_timeout=10.0,
                heartbeat_seconds=0.05,
            ),
        )
        worker.start()
        try:
            backend = SpoolBackend(
                spool_dir, participate=False, reclaim_seconds=0.3
            )
            outcome = ParallelExecutor(backend=backend).run(plan)
        finally:
            worker.join(timeout=30)
        # The 0.8s execution outlived the 0.3s reclaim age, but the
        # heartbeat kept the lease visibly alive: executed exactly once.
        assert outcome.results[("slow",)] == ("slow-done", ("slow",), 2)
        assert starts_recorded(marker) == 1
        assert list((spool_dir / "dead").glob("*")) == []

    def test_stolen_lease_drops_the_duplicate_and_the_rerun_converges(
        self, tmp_path
    ):
        # The contrast case proving the heartbeat test above is real:
        # steal the lease mid-execution (what the reclaim sweep does to
        # a worker without a heartbeat) and the first claimant discards
        # its answer; the redelivered task is executed again and the
        # run converges on the rerun's result — the unit simply cost
        # two executions.
        spool_dir = tmp_path / "q"
        marker = tmp_path / "starts"
        cell = SlowCell(
            key=("slow",),
            label="slow",
            method="-",
            marker_dir=str(marker),
            sleep_seconds=0.8,
        )
        plan = StudyPlan(settings=_settings(), cells=(cell,), name="steal")
        worker = threading.Thread(
            target=run_worker,
            kwargs=dict(
                root=spool_dir,
                poll_interval=0.01,
                idle_timeout=10.0,
                heartbeat_seconds=None,
            ),
        )
        worker.start()
        holder = {}

        def drive():
            backend = SpoolBackend(
                spool_dir, participate=False, reclaim_seconds=None
            )
            try:
                holder["outcome"] = ParallelExecutor(backend=backend).run(plan)
            except BaseException as error:
                holder["error"] = error

        scheduler = threading.Thread(target=drive)
        scheduler.start()
        try:
            deadline = time.monotonic() + 30
            while starts_recorded(marker) < 1 and time.monotonic() < deadline:
                time.sleep(0.02)
            assert starts_recorded(marker) >= 1
            (claimed,) = list((spool_dir / "claimed").glob("*.task"))
            _requeue(spool_dir, claimed, 5, "stolen by the test")
            scheduler.join(timeout=60)
        finally:
            worker.join(timeout=30)
        assert not scheduler.is_alive()
        assert "error" not in holder, holder.get("error")
        outcome = holder["outcome"]
        assert outcome.results[("slow",)] == ("slow-done", ("slow",), 2)
        assert starts_recorded(marker) == 2
        assert list((spool_dir / "dead").glob("*")) == []


class TestWorkerCrash:
    def _spawn_worker(self, spool_dir, *, idle_timeout=None):
        src = Path(__file__).resolve().parents[1] / "src"
        tests = Path(__file__).resolve().parent
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            f"{src}{os.pathsep}{tests}{os.pathsep}" + env.get("PYTHONPATH", "")
        )
        argv = [
            sys.executable,
            "-m",
            "repro",
            "worker",
            str(spool_dir),
            "--poll",
            "0.02",
            "--heartbeat",
            "0.05",
            "--quiet",
        ]
        if idle_timeout is not None:
            argv += ["--idle-timeout", str(idle_timeout)]
        return subprocess.Popen(
            argv,
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )

    def _wait_for_start(self, marker, minimum=1, timeout=30.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if starts_recorded(marker) >= minimum:
                return
            time.sleep(0.02)
        raise AssertionError("worker never began executing the slow task")

    def test_sigkilled_worker_is_reclaimed_and_rerun_bit_identically(
        self, tmp_path
    ):
        # The end-to-end crash story: a real detached worker process is
        # SIGKILLed mid-task; the scheduler reclaims the stale lease, a
        # replacement worker reruns the unit, and the run completes
        # with the exact value a crash-free run produces — leaving no
        # stranded lease behind.
        spool_dir = tmp_path / "q"
        marker = tmp_path / "starts"
        cell = SlowCell(
            key=("slow",),
            label="slow",
            method="-",
            marker_dir=str(marker),
            sleep_seconds=1.5,
        )
        plan = StudyPlan(settings=_settings(), cells=(cell,), name="sigkill")
        victim = self._spawn_worker(spool_dir)
        replacement = None
        holder = {}

        def drive():
            backend = SpoolBackend(
                spool_dir, participate=False, reclaim_seconds=0.5
            )
            try:
                holder["outcome"] = ParallelExecutor(backend=backend).run(plan)
            except BaseException as error:  # surfaced after the join
                holder["error"] = error

        scheduler = threading.Thread(target=drive)
        scheduler.start()
        try:
            self._wait_for_start(marker)
            victim.kill()  # SIGKILL: no cleanup, the lease is stranded
            victim.wait(timeout=30)
            replacement = self._spawn_worker(spool_dir, idle_timeout=15)
            scheduler.join(timeout=60)
        finally:
            victim.kill()
            if replacement is not None:
                replacement.kill()
                replacement.wait(timeout=30)
        assert not scheduler.is_alive()
        assert "error" not in holder, holder.get("error")
        outcome = holder["outcome"]
        assert outcome.results[("slow",)] == ("slow-done", ("slow",), 2)
        assert outcome.failures == ()
        # Killed once mid-sleep, rerun once to completion.
        assert starts_recorded(marker) == 2
        assert list((spool_dir / "claimed").iterdir()) == []
        assert list((spool_dir / "dead").glob("*")) == []

    def test_capped_crashing_task_is_buried_while_the_run_continues(
        self, tmp_path
    ):
        # The acceptance scenario: with a redelivery cap of zero, the
        # task whose worker died is buried in dead/ (diagnostics
        # sidecar included) instead of redelivered, and an
        # on_error="continue" run returns every healthy cell plus the
        # failure record.
        spool_dir = tmp_path / "q"
        marker = tmp_path / "starts"
        slow = SlowCell(
            key=("slow",),
            label="slow",
            method="-",
            marker_dir=str(marker),
            sleep_seconds=2.5,
        )
        good = study_cell()
        plan = StudyPlan(
            settings=_settings(), cells=(good, slow), name="dead-letter"
        )
        victim = self._spawn_worker(spool_dir)
        holder = {}

        def drive():
            backend = SpoolBackend(
                spool_dir,
                participate=False,
                reclaim_seconds=0.5,
                redeliver_cap=0,
            )
            executor = ParallelExecutor(
                backend=backend, max_retries=0, on_error="continue"
            )
            try:
                holder["outcome"] = executor.run(plan)
            except BaseException as error:
                holder["error"] = error

        scheduler = threading.Thread(target=drive)
        scheduler.start()
        try:
            self._wait_for_start(marker)
            victim.kill()
            victim.wait(timeout=30)
            scheduler.join(timeout=60)
        finally:
            victim.kill()
        assert not scheduler.is_alive()
        assert "error" not in holder, holder.get("error")
        outcome = holder["outcome"]
        # The healthy cell completed; the poison task was quarantined.
        assert set(outcome.results) == {good.key}
        (failure,) = outcome.failures
        assert failure.label == "slow"
        assert "dead" in failure.error
        dead_tasks = list((spool_dir / "dead").glob("*.task"))
        assert len(dead_tasks) == 1
        diagnostics = json.loads(
            (spool_dir / "dead" / f"{dead_tasks[0].stem}.json").read_text()
        )
        assert diagnostics["label"] == "slow"
        assert diagnostics["deliveries"] == 1
