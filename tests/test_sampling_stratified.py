"""Unit tests for stratified-by-predicate sampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SamplingError
from repro.kg.graph import KnowledgeGraph
from repro.kg.synthetic import SyntheticKG
from repro.kg.triple import Triple
from repro.sampling.stratified import StratifiedPredicateSampling


@pytest.fixture
def predicate_kg() -> KnowledgeGraph:
    """A KG whose label distribution differs sharply by predicate."""
    triples: list[Triple] = []
    labels: list[bool] = []
    rng = np.random.default_rng(0)
    # Predicate "clean": 95% correct, 600 facts.
    for i in range(600):
        triples.append(Triple(f"e:{i % 200}", "clean", f"v:{i}"))
        labels.append(bool(rng.random() < 0.95))
    # Predicate "noisy": 40% correct, 400 facts.
    for i in range(400):
        triples.append(Triple(f"e:{i % 150}", "noisy", f"v:{i}"))
        labels.append(bool(rng.random() < 0.40))
    return KnowledgeGraph(triples, labels)


class TestDraw:
    def test_allocation_proportional(self, predicate_kg, rng):
        strat = StratifiedPredicateSampling()
        state = strat.new_state()
        batch = strat.draw(predicate_kg, state, units=100, rng=rng)
        strat.update(state, batch, predicate_kg.labels(batch.indices))
        counts = state.stratum_annotated
        # Strata are 60% / 40% of the KG (sorted by predicate name:
        # "clean" then "noisy").
        assert counts[0] == pytest.approx(60, abs=2)
        assert counts[1] == pytest.approx(40, abs=2)

    def test_no_repeats_across_batches(self, predicate_kg, rng):
        strat = StratifiedPredicateSampling()
        state = strat.new_state()
        seen: set[int] = set()
        for _ in range(5):
            batch = strat.draw(predicate_kg, state, units=20, rng=rng)
            strat.update(state, batch, predicate_kg.labels(batch.indices))
            for idx in batch.indices:
                assert int(idx) not in seen
                seen.add(int(idx))

    def test_strata_recorded_on_batch(self, predicate_kg, rng):
        strat = StratifiedPredicateSampling()
        batch = strat.draw(predicate_kg, strat.new_state(), units=10, rng=rng)
        assert batch.strata is not None
        assert len(batch.strata) == 10

    def test_requires_materialised_kg(self, rng):
        synthetic = SyntheticKG(1_000, 100, accuracy=0.9, seed=0)
        strat = StratifiedPredicateSampling()
        with pytest.raises(SamplingError):
            strat.draw(synthetic, strat.new_state(), units=1, rng=rng)

    def test_rejects_foreign_batch(self, predicate_kg, rng):
        from repro.sampling.srs import SimpleRandomSampling

        srs = SimpleRandomSampling()
        foreign = srs.draw(predicate_kg, srs.new_state(), units=5, rng=rng)
        strat = StratifiedPredicateSampling()
        with pytest.raises(SamplingError):
            strat.update(strat.new_state(), foreign, predicate_kg.labels(foreign.indices))


class TestEvidence:
    def _evidence(self, kg, units, seed=0):
        strat = StratifiedPredicateSampling()
        state = strat.new_state()
        rng = np.random.default_rng(seed)
        batch = strat.draw(kg, state, units=units, rng=rng)
        strat.update(state, batch, kg.labels(batch.indices))
        return strat.evidence(state)

    def test_estimate_unbiased(self, predicate_kg):
        estimates = [
            self._evidence(predicate_kg, units=120, seed=seed).mu_hat
            for seed in range(150)
        ]
        assert np.mean(estimates) == pytest.approx(predicate_kg.accuracy, abs=0.01)

    def test_variance_below_srs(self, predicate_kg):
        # Labels correlate with predicates -> stratification wins.
        ev = self._evidence(predicate_kg, units=200, seed=1)
        srs_variance = ev.mu_hat * (1 - ev.mu_hat) / ev.n_annotated
        assert ev.variance < srs_variance

    def test_effective_sample_above_raw(self, predicate_kg):
        ev = self._evidence(predicate_kg, units=200, seed=2)
        assert ev.n_effective > ev.n_annotated

    def test_bounds(self, predicate_kg):
        ev = self._evidence(predicate_kg, units=50, seed=3)
        assert 0.0 <= ev.mu_hat <= 1.0
        assert 0.0 <= ev.tau_effective <= ev.n_effective + 1e-9


class TestEndToEnd:
    def test_evaluator_integration(self, predicate_kg):
        from repro.evaluation.framework import KGAccuracyEvaluator
        from repro.intervals.ahpd import AdaptiveHPD

        evaluator = KGAccuracyEvaluator(
            predicate_kg, StratifiedPredicateSampling(), AdaptiveHPD()
        )
        result = evaluator.run(rng=0)
        assert result.converged
        assert result.mu_hat == pytest.approx(predicate_kg.accuracy, abs=0.1)
