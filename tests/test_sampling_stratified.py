"""Unit tests for stratified-by-predicate sampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SamplingError
from repro.kg.graph import KnowledgeGraph
from repro.kg.synthetic import SyntheticKG
from repro.kg.triple import Triple
from repro.sampling.stratified import StratifiedPredicateSampling


@pytest.fixture
def predicate_kg() -> KnowledgeGraph:
    """A KG whose label distribution differs sharply by predicate."""
    triples: list[Triple] = []
    labels: list[bool] = []
    rng = np.random.default_rng(0)
    # Predicate "clean": 95% correct, 600 facts.
    for i in range(600):
        triples.append(Triple(f"e:{i % 200}", "clean", f"v:{i}"))
        labels.append(bool(rng.random() < 0.95))
    # Predicate "noisy": 40% correct, 400 facts.
    for i in range(400):
        triples.append(Triple(f"e:{i % 150}", "noisy", f"v:{i}"))
        labels.append(bool(rng.random() < 0.40))
    return KnowledgeGraph(triples, labels)


class TestDraw:
    def test_allocation_proportional(self, predicate_kg, rng):
        strat = StratifiedPredicateSampling()
        state = strat.new_state()
        batch = strat.draw(predicate_kg, state, units=100, rng=rng)
        strat.update(state, batch, predicate_kg.labels(batch.indices))
        counts = state.stratum_annotated
        # Strata are 60% / 40% of the KG (sorted by predicate name:
        # "clean" then "noisy").
        assert counts[0] == pytest.approx(60, abs=2)
        assert counts[1] == pytest.approx(40, abs=2)

    def test_no_repeats_across_batches(self, predicate_kg, rng):
        strat = StratifiedPredicateSampling()
        state = strat.new_state()
        seen: set[int] = set()
        for _ in range(5):
            batch = strat.draw(predicate_kg, state, units=20, rng=rng)
            strat.update(state, batch, predicate_kg.labels(batch.indices))
            for idx in batch.indices:
                assert int(idx) not in seen
                seen.add(int(idx))

    def test_strata_recorded_on_batch(self, predicate_kg, rng):
        strat = StratifiedPredicateSampling()
        batch = strat.draw(predicate_kg, strat.new_state(), units=10, rng=rng)
        assert batch.strata is not None
        assert len(batch.strata) == 10

    def test_requires_materialised_kg(self, rng):
        synthetic = SyntheticKG(1_000, 100, accuracy=0.9, seed=0)
        strat = StratifiedPredicateSampling()
        with pytest.raises(SamplingError):
            strat.draw(synthetic, strat.new_state(), units=1, rng=rng)

    def test_rejects_foreign_batch(self, predicate_kg, rng):
        from repro.sampling.srs import SimpleRandomSampling

        srs = SimpleRandomSampling()
        foreign = srs.draw(predicate_kg, srs.new_state(), units=5, rng=rng)
        strat = StratifiedPredicateSampling()
        with pytest.raises(SamplingError):
            strat.update(strat.new_state(), foreign, predicate_kg.labels(foreign.indices))


class TestEvidence:
    def _evidence(self, kg, units, seed=0):
        strat = StratifiedPredicateSampling()
        state = strat.new_state()
        rng = np.random.default_rng(seed)
        batch = strat.draw(kg, state, units=units, rng=rng)
        strat.update(state, batch, kg.labels(batch.indices))
        return strat.evidence(state)

    def test_estimate_unbiased(self, predicate_kg):
        estimates = [
            self._evidence(predicate_kg, units=120, seed=seed).mu_hat
            for seed in range(150)
        ]
        assert np.mean(estimates) == pytest.approx(predicate_kg.accuracy, abs=0.01)

    def test_variance_below_srs(self, predicate_kg):
        # Labels correlate with predicates -> stratification wins.
        ev = self._evidence(predicate_kg, units=200, seed=1)
        srs_variance = ev.mu_hat * (1 - ev.mu_hat) / ev.n_annotated
        assert ev.variance < srs_variance

    def test_effective_sample_above_raw(self, predicate_kg):
        ev = self._evidence(predicate_kg, units=200, seed=2)
        assert ev.n_effective > ev.n_annotated

    def test_bounds(self, predicate_kg):
        ev = self._evidence(predicate_kg, units=50, seed=3)
        assert 0.0 <= ev.mu_hat <= 1.0
        assert 0.0 <= ev.tau_effective <= ev.n_effective + 1e-9


class TestEndToEnd:
    def test_evaluator_integration(self, predicate_kg):
        from repro.evaluation.framework import KGAccuracyEvaluator
        from repro.intervals.ahpd import AdaptiveHPD

        evaluator = KGAccuracyEvaluator(
            predicate_kg, StratifiedPredicateSampling(), AdaptiveHPD()
        )
        result = evaluator.run(rng=0)
        assert result.converged
        assert result.mu_hat == pytest.approx(predicate_kg.accuracy, abs=0.1)


class TestBatchedDraw:
    """The vectorised multi-unit path vs the scalar per-unit fallback."""

    def test_allocation_identical_batch_vs_scalar(self, predicate_kg):
        # The proportional-allocation stratum sequence is deterministic
        # (no randomness), so the batched path must reproduce the
        # scalar path's sequence exactly, whatever the batch size.
        strat = StratifiedPredicateSampling()
        state = strat.new_state()
        batched = strat.draw(
            predicate_kg, state, units=37, rng=np.random.default_rng(0)
        )
        scalar_strata = []
        scalar_state = strat.new_state()
        rng = np.random.default_rng(1)
        for _ in range(37):
            one = strat.draw(predicate_kg, scalar_state, units=1, rng=rng)
            strat.update(scalar_state, one, predicate_kg.labels(one.indices))
            scalar_strata.extend(one.strata)
        assert list(batched.strata) == scalar_strata

    def test_batch_indices_distinct_and_in_stratum(self, predicate_kg, rng):
        strat = StratifiedPredicateSampling()
        batch = strat.draw(predicate_kg, strat.new_state(), units=50, rng=rng)
        indices = [int(i) for i in batch.indices]
        assert len(set(indices)) == 50
        _, members = strat._strata(predicate_kg)
        for index, stratum in zip(indices, batch.strata):
            assert index in set(int(i) for i in members[stratum])

    def test_batch_avoids_already_annotated(self, predicate_kg, rng):
        strat = StratifiedPredicateSampling()
        state = strat.new_state()
        for _ in range(4):
            batch = strat.draw(predicate_kg, state, units=40, rng=rng)
            strat.update(state, batch, predicate_kg.labels(batch.indices))
        assert state.n_annotated == 160
        assert len(state.seen_triples) == 160

    def test_forced_agreement_on_drained_stratum(self):
        # With exactly k available members per stratum, both paths have
        # no freedom: the drawn sets must coincide.
        from repro.kg.graph import KnowledgeGraph
        from repro.kg.triple import Triple

        triples = [Triple(f"e:{i}", "p", f"v:{i}") for i in range(4)]
        triples += [Triple(f"f:{i}", "q", f"w:{i}") for i in range(4)]
        kg = KnowledgeGraph(triples, [True] * 8)
        strat = StratifiedPredicateSampling()
        batched = strat.draw(
            kg, strat.new_state(), units=8, rng=np.random.default_rng(0)
        )
        scalar_state = strat.new_state()
        rng = np.random.default_rng(0)
        scalar: set[int] = set()
        for _ in range(8):
            one = strat.draw(kg, scalar_state, units=1, rng=rng)
            strat.update(scalar_state, one, kg.labels(one.indices))
            scalar.update(int(i) for i in one.indices)
        assert set(int(i) for i in batched.indices) == scalar == set(range(8))

    def test_batch_exhaustion_raises(self):
        from repro.exceptions import InsufficientSampleError
        from repro.kg.graph import KnowledgeGraph
        from repro.kg.triple import Triple

        triples = [Triple(f"e:{i}", "p", f"v:{i}") for i in range(3)]
        kg = KnowledgeGraph(triples, [True] * 3)
        strat = StratifiedPredicateSampling()
        with pytest.raises(InsufficientSampleError):
            strat.draw(kg, strat.new_state(), units=5, rng=np.random.default_rng(0))

    def test_batched_estimates_unbiased(self, predicate_kg):
        # The random-keys subset is a uniform without-replacement draw,
        # so the stratified estimator stays unbiased on the batch path.
        strat_estimates = []
        for seed in range(120):
            strat = StratifiedPredicateSampling()
            state = strat.new_state()
            batch = strat.draw(
                predicate_kg, state, units=100, rng=np.random.default_rng(seed)
            )
            strat.update(state, batch, predicate_kg.labels(batch.indices))
            strat_estimates.append(strat.evidence(state).mu_hat)
        assert np.mean(strat_estimates) == pytest.approx(
            predicate_kg.accuracy, abs=0.015
        )
