"""Unit tests for evidence and the SRS / TWCS estimators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.estimators.base import Evidence
from repro.estimators.cluster import (
    kish_design_effect,
    twcs_evidence,
    twcs_point_estimate,
)
from repro.estimators.proportion import srs_evidence, srs_evidence_from_labels
from repro.exceptions import InsufficientSampleError, ValidationError


class TestEvidence:
    def test_from_counts(self):
        ev = Evidence.from_counts(27, 30)
        assert ev.mu_hat == pytest.approx(0.9)
        assert ev.variance == pytest.approx(0.9 * 0.1 / 30)
        assert ev.n_effective == 30.0
        assert ev.tau_effective == 27.0
        assert ev.n_annotated == 30

    def test_all_correct_flags(self):
        assert Evidence.from_counts(30, 30).all_correct
        assert Evidence.from_counts(0, 30).all_incorrect
        ev = Evidence.from_counts(15, 30)
        assert not ev.all_correct and not ev.all_incorrect

    def test_rejects_bad_counts(self):
        with pytest.raises(ValidationError):
            Evidence.from_counts(31, 30)
        with pytest.raises(ValidationError):
            Evidence.from_counts(0, 0)

    def test_rejects_inconsistent_fields(self):
        with pytest.raises(ValidationError):
            Evidence(mu_hat=0.5, variance=0.1, n_effective=10, tau_effective=11, n_annotated=10)
        with pytest.raises(ValidationError):
            Evidence(mu_hat=0.5, variance=-0.1, n_effective=10, tau_effective=5, n_annotated=10)
        with pytest.raises(ValidationError):
            Evidence(mu_hat=0.5, variance=0.1, n_effective=0, tau_effective=0, n_annotated=0)


class TestSRSEstimator:
    def test_point_estimate_eq2(self):
        ev = srs_evidence(91, 100)
        assert ev.mu_hat == pytest.approx(0.91)
        assert ev.variance == pytest.approx(0.91 * 0.09 / 100)

    def test_from_labels(self):
        ev = srs_evidence_from_labels([True, True, False, True])
        assert ev.mu_hat == pytest.approx(0.75)
        assert ev.n_annotated == 4

    def test_from_int_labels(self):
        ev = srs_evidence_from_labels(np.array([1, 0, 1, 1]))
        assert ev.mu_hat == pytest.approx(0.75)

    def test_rejects_non_binary(self):
        with pytest.raises(ValidationError):
            srs_evidence_from_labels([0.5, 1.0])

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            srs_evidence_from_labels([])

    def test_unbiasedness_monte_carlo(self, rng):
        # E[mu_hat] over repeated SRS should match the population mean.
        population = rng.random(5_000) < 0.83
        estimates = []
        for _ in range(300):
            sample = rng.choice(population, size=60, replace=False)
            estimates.append(srs_evidence_from_labels(sample).mu_hat)
        assert np.mean(estimates) == pytest.approx(population.mean(), abs=0.01)


class TestTWCSEstimator:
    def test_point_estimate_eq3(self):
        means = [1.0, 0.5, 0.75, 0.75]
        mu_hat, variance = twcs_point_estimate(means)
        assert mu_hat == pytest.approx(0.75)
        expected_var = np.sum((np.array(means) - 0.75) ** 2) / (4 * 3)
        assert variance == pytest.approx(expected_var)

    def test_requires_two_clusters(self):
        with pytest.raises(InsufficientSampleError):
            twcs_point_estimate([0.9])

    def test_rejects_out_of_range_means(self):
        with pytest.raises(ValidationError):
            twcs_point_estimate([0.5, 1.2])

    def test_evidence_consistency(self):
        ev = twcs_evidence([0.8, 0.9, 1.0, 0.7], n_annotated=12)
        assert ev.mu_hat == pytest.approx(0.85)
        assert ev.n_annotated == 12
        assert ev.tau_effective == pytest.approx(ev.mu_hat * ev.n_effective)

    def test_identical_means_give_large_n_effective(self):
        ev = twcs_evidence([0.8, 0.8, 0.8], n_annotated=9)
        # Zero between-cluster variance: deff floors, n_eff inflates.
        assert ev.n_effective > 9

    def test_rejects_zero_annotations(self):
        with pytest.raises(ValidationError):
            twcs_evidence([0.5, 0.6], n_annotated=0)


class TestKishDesignEffect:
    def test_matches_definition(self):
        mu, var, n = 0.8, 0.005, 40
        expected = var / (mu * (1 - mu) / n)
        assert kish_design_effect(mu, var, n) == pytest.approx(expected)

    def test_boundary_mu_returns_one(self):
        assert kish_design_effect(1.0, 0.0, 30) == 1.0
        assert kish_design_effect(0.0, 0.0, 30) == 1.0

    def test_zero_variance_floors(self):
        deff = kish_design_effect(0.5, 0.0, 30)
        assert 0 < deff < 1e-2

    def test_clipping(self):
        assert kish_design_effect(0.5, 1e9, 30) <= 1e3

    def test_rejects_zero_n(self):
        with pytest.raises(ValidationError):
            kish_design_effect(0.5, 0.01, 0)
