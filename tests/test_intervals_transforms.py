"""Unit tests for the arcsine and logit interval baselines."""

from __future__ import annotations

import pytest

from repro.estimators.base import Evidence
from repro.evaluation.coverage import empirical_coverage
from repro.intervals.transforms import ArcsineInterval, LogitInterval


class TestArcsine:
    def test_bounds_inside_unit_interval(self):
        for tau, n in [(0, 30), (1, 30), (15, 30), (29, 30), (30, 30)]:
            interval = ArcsineInterval().compute(Evidence.from_counts(tau, n), 0.05)
            assert 0.0 <= interval.lower <= interval.upper <= 1.0

    def test_centre_tracks_estimate(self):
        interval = ArcsineInterval().compute(Evidence.from_counts(24, 30), 0.05)
        assert interval.contains(0.8)

    def test_width_shrinks_with_n(self):
        small = ArcsineInterval().compute(Evidence.from_counts(24, 30), 0.05)
        large = ArcsineInterval().compute(Evidence.from_counts(240, 300), 0.05)
        assert large.width < small.width

    def test_no_zero_width_pathology(self):
        interval = ArcsineInterval().compute(Evidence.from_counts(30, 30), 0.05)
        assert interval.width > 0.0

    def test_reasonable_coverage_midrange(self):
        result = empirical_coverage(
            ArcsineInterval(), mu=0.7, n=100, repetitions=2_000, rng=0
        )
        assert result.coverage > 0.90


class TestLogit:
    def test_bounds_inside_open_unit_interval(self):
        for tau, n in [(1, 30), (15, 30), (29, 30)]:
            interval = LogitInterval().compute(Evidence.from_counts(tau, n), 0.05)
            assert 0.0 < interval.lower < interval.upper < 1.0

    def test_unanimous_outcomes_corrected(self):
        # The Anscombe correction keeps unanimous outcomes finite.
        all_correct = LogitInterval().compute(Evidence.from_counts(30, 30), 0.05)
        assert 0.0 < all_correct.lower < all_correct.upper < 1.0
        assert all_correct.width > 0.0
        none_correct = LogitInterval().compute(Evidence.from_counts(0, 30), 0.05)
        assert none_correct.upper < 0.5

    def test_centre_tracks_estimate(self):
        interval = LogitInterval().compute(Evidence.from_counts(24, 30), 0.05)
        assert interval.contains(0.8)

    def test_reasonable_coverage_midrange(self):
        result = empirical_coverage(
            LogitInterval(), mu=0.7, n=100, repetitions=2_000, rng=0
        )
        assert result.coverage > 0.90

    def test_symmetry_on_logit_scale(self):
        # Swapping successes and failures mirrors the interval.
        a = LogitInterval().compute(Evidence.from_counts(24, 30), 0.05)
        b = LogitInterval().compute(Evidence.from_counts(6, 30), 0.05)
        assert a.lower == pytest.approx(1.0 - b.upper, abs=1e-12)
        assert a.upper == pytest.approx(1.0 - b.lower, abs=1e-12)
