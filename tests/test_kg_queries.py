"""Unit tests for the triple-pattern query index."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.kg.queries import TripleIndex
from repro.kg.synthetic import SyntheticKG


@pytest.fixture
def index(tiny_kg) -> TripleIndex:
    return TripleIndex(tiny_kg)


class TestMatch:
    def test_wildcard_everything(self, index, tiny_kg):
        assert index.match().size == tiny_kg.num_triples

    def test_by_subject(self, index):
        assert index.count(subject="e:bob") == 3
        assert index.count(subject="e:carol") == 1

    def test_by_predicate(self, index):
        assert index.count(predicate="bornIn") == 3
        assert index.count(predicate="worksFor") == 2

    def test_by_object(self, index):
        assert index.count(object="v:acme") == 2

    def test_compound_pattern(self, index):
        matches = list(index.triples(subject="e:bob", predicate="worksFor"))
        assert len(matches) == 1
        assert matches[0].object == "v:acme"

    def test_fully_bound(self, index):
        assert index.count("e:alice", "bornIn", "v:paris") == 1
        assert index.count("e:alice", "bornIn", "v:rome") == 0

    def test_unknown_values_empty(self, index):
        assert index.count(subject="e:nobody") == 0
        assert index.count(predicate="owns") == 0

    def test_indices_are_valid(self, index, tiny_kg):
        idx = index.match(predicate="bornIn")
        assert np.all(idx >= 0)
        assert np.all(idx < tiny_kg.num_triples)
        for i in idx:
            assert tiny_kg.triples[int(i)].predicate == "bornIn"


class TestVocabulary:
    def test_predicates_sorted(self, index):
        preds = index.predicates
        assert list(preds) == sorted(preds)
        assert "bornIn" in preds

    def test_objects(self, index):
        assert "v:acme" in index.objects


class TestProfiles:
    def test_predicate_profile(self, index):
        profile = index.predicate_profile("bornIn")
        assert profile.num_facts == 3
        assert profile.num_subjects == 3
        # bornIn labels in tiny_kg: alice True, bob False, carol True.
        assert profile.accuracy == pytest.approx(2 / 3)

    def test_unknown_predicate(self, index):
        with pytest.raises(ValidationError):
            index.predicate_profile("owns")

    def test_all_profiles_cover_graph(self, index, tiny_kg):
        profiles = index.predicate_profiles()
        assert sum(p.num_facts for p in profiles.values()) == tiny_kg.num_triples


class TestConstruction:
    def test_requires_materialised_graph(self):
        with pytest.raises(ValidationError):
            TripleIndex(SyntheticKG(100, 10, accuracy=0.5, seed=0))

    def test_repr(self, index):
        assert "num_triples=6" in repr(index)
