"""Fault-model tests: retry policy, quarantine, failure records.

The contract under test: a failed unit of work is retried on a
deterministic backoff schedule derived from its token; a unit that
exhausts its retries either aborts the run with the full failure
history (``on_error="raise"``) or is quarantined while every other
cell completes (``on_error="continue"``); and because cells are seeded
at plan-build time, a retried unit produces exactly the numbers a
fault-free run would have.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import pytest

from repro.exceptions import ValidationError
from repro.experiments.config import ExperimentSettings
from repro.runtime import (
    CellSpec,
    ParallelExecutor,
    PlanExecutionError,
    ProcessPoolBackend,
    RetryPolicy,
    SerialBackend,
    SpoolBackend,
    StudyCell,
    StudyPlan,
    register_cell_runner,
    unit_token,
)
from repro.runtime.faults import resolve_max_retries, resolve_on_error


@dataclass(frozen=True)
class FlakyCell(CellSpec):
    """Fails its first ``fail_times`` attempts, then succeeds.

    Attempts are counted through files under ``marker_dir`` (created
    with ``exist_ok=False``, so the count survives process boundaries),
    which also lets tests assert exactly how many executions happened.
    """

    marker_dir: str = ""
    fail_times: int = 0


def _record_attempt(marker_dir: str) -> int:
    root = Path(marker_dir)
    root.mkdir(parents=True, exist_ok=True)
    attempt = 1
    while True:
        try:
            (root / f"attempt-{attempt:04d}").touch(exist_ok=False)
            return attempt
        except FileExistsError:
            attempt += 1


def attempts_recorded(marker_dir) -> int:
    return len(list(Path(marker_dir).glob("attempt-*")))


@register_cell_runner(FlakyCell)
def _run_flaky(cell, settings):
    attempt = _record_attempt(cell.marker_dir)
    if attempt <= cell.fail_times:
        raise ValidationError(f"transient failure #{attempt}")
    return ("ok", cell.key, settings.repetitions)


@dataclass(frozen=True)
class BrokenCell(CellSpec):
    """Fails every attempt: the persistent-fault case."""


@register_cell_runner(BrokenCell)
def _run_broken(cell, settings):
    raise ValidationError("persistent failure")


def study_cell(method: str = "Wilson") -> StudyCell:
    return StudyCell(
        key=("NELL", "SRS", method),
        label=f"NELL/SRS/{method}",
        method=method,
        dataset="NELL",
        strategy="SRS",
        seed_stream=(5,),
    )


def plan_of(cells, repetitions=3, seed=0):
    settings = ExperimentSettings(repetitions=repetitions, seed=seed)
    return StudyPlan(settings=settings, cells=tuple(cells), name="faults-test")


class TestRetryPolicy:
    def test_attempts_counts_first_run_plus_retries(self):
        assert RetryPolicy().attempts == 1
        assert RetryPolicy(max_retries=3).attempts == 4

    def test_delay_is_deterministic_per_token(self):
        policy = RetryPolicy(max_retries=5)
        assert policy.delay(2, "cafe") == policy.delay(2, "cafe")
        # ...but de-synchronised across tokens and attempts.
        assert policy.delay(2, "cafe") != policy.delay(2, "beef")
        assert policy.delay(1, "cafe") != policy.delay(2, "cafe")

    def test_delay_grows_exponentially_without_jitter(self):
        policy = RetryPolicy(max_retries=5, backoff_base=0.1, jitter=0.0)
        assert policy.delay(1, "t") == pytest.approx(0.1)
        assert policy.delay(2, "t") == pytest.approx(0.2)
        assert policy.delay(3, "t") == pytest.approx(0.4)

    def test_delay_is_capped(self):
        policy = RetryPolicy(
            max_retries=20, backoff_base=1.0, backoff_cap=2.5, jitter=0.0
        )
        assert policy.delay(10, "t") == pytest.approx(2.5)

    def test_jitter_only_shaves_downward(self):
        policy = RetryPolicy(max_retries=5, backoff_base=0.1, jitter=0.5)
        for attempt in (1, 2, 3):
            raw = RetryPolicy(max_retries=5, backoff_base=0.1, jitter=0.0).delay(
                attempt, "t"
            )
            shaved = policy.delay(attempt, "t")
            assert 0.5 * raw <= shaved <= raw

    def test_validation(self):
        with pytest.raises(ValidationError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValidationError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValidationError):
            RetryPolicy(backoff_base=-0.1)
        with pytest.raises(ValidationError):
            RetryPolicy(max_retries=1).delay(0, "t")


class TestEnvResolution:
    def test_max_retries_reads_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_RETRIES", "4")
        assert resolve_max_retries(None) == 4
        # An explicit argument beats the environment.
        assert resolve_max_retries(1) == 1

    def test_max_retries_default_and_validation(self, monkeypatch):
        monkeypatch.delenv("REPRO_MAX_RETRIES", raising=False)
        assert resolve_max_retries(None) == 0
        monkeypatch.setenv("REPRO_MAX_RETRIES", "many")
        with pytest.raises(ValidationError, match="REPRO_MAX_RETRIES"):
            resolve_max_retries(None)
        with pytest.raises(ValidationError):
            resolve_max_retries(-2)

    def test_on_error_reads_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ON_ERROR", "continue")
        assert resolve_on_error(None) == "continue"
        assert resolve_on_error("raise") == "raise"

    def test_on_error_default_and_validation(self, monkeypatch):
        monkeypatch.delenv("REPRO_ON_ERROR", raising=False)
        assert resolve_on_error(None) == "raise"
        assert resolve_on_error("CONTINUE") == "continue"
        with pytest.raises(ValidationError, match="on_error"):
            resolve_on_error("explode")

    def test_retry_policy_and_max_retries_are_exclusive(self):
        with pytest.raises(ValidationError, match="mutually exclusive"):
            ParallelExecutor(max_retries=1, retry_policy=RetryPolicy())

    def test_repr_mentions_fault_knobs(self):
        text = repr(ParallelExecutor(max_retries=2, on_error="continue"))
        assert "max_retries=2" in text
        assert "on_error='continue'" in text


def _backend_for(name: str, tmp_path):
    if name == "serial":
        return SerialBackend()
    if name == "process":
        return ProcessPoolBackend(2)
    return SpoolBackend(tmp_path / "q")


class TestRetries:
    @pytest.mark.parametrize("backend_name", ["serial", "process", "spool"])
    def test_transient_failure_retries_to_success(self, tmp_path, backend_name):
        marker = tmp_path / "attempts"
        flaky = FlakyCell(
            key=("flaky",),
            label="flaky",
            method="-",
            marker_dir=str(marker),
            fail_times=2,
        )
        plan = plan_of([flaky, study_cell()])
        outcome = ParallelExecutor(
            backend=_backend_for(backend_name, tmp_path),
            retry_policy=RetryPolicy(max_retries=3, backoff_base=0.001),
        ).run(plan)
        assert outcome.results[("flaky",)] == ("ok", ("flaky",), 3)
        assert outcome.retries == 2
        assert attempts_recorded(marker) == 3
        assert outcome.failures == ()
        assert "2 retried" in outcome.summary()

    def test_retried_results_match_a_clean_run(self, tmp_path):
        # The reproducibility claim behind "retrying is always safe":
        # numbers coming out of a retried unit are exactly the numbers
        # a never-failed run produces.
        flaky = FlakyCell(
            key=("flaky",),
            label="flaky",
            method="-",
            marker_dir=str(tmp_path / "a"),
            fail_times=1,
        )
        plan = plan_of([flaky, study_cell()])
        retried = ParallelExecutor(
            backend=SerialBackend(),
            retry_policy=RetryPolicy(max_retries=1, backoff_base=0.0),
        ).run(plan)
        clean = FlakyCell(
            key=("flaky",),
            label="flaky",
            method="-",
            marker_dir=str(tmp_path / "b"),
            fail_times=0,
        )
        reference = ParallelExecutor(backend=SerialBackend()).run(
            plan_of([clean, study_cell()])
        )
        assert retried.results[("flaky",)] == reference.results[("flaky",)]

    def test_retry_update_hook_fires_per_resubmission(self, tmp_path):
        events = []

        class Recorder:
            def __call__(self, done, total, result):
                pass

            def retry_update(self, failure, attempt, max_attempts, delay):
                events.append((failure.label, attempt, max_attempts, delay))

        flaky = FlakyCell(
            key=("flaky",),
            label="flaky",
            method="-",
            marker_dir=str(tmp_path / "attempts"),
            fail_times=2,
        )
        ParallelExecutor(
            backend=SerialBackend(),
            progress=Recorder(),
            retry_policy=RetryPolicy(max_retries=2, backoff_base=0.0),
        ).run(plan_of([flaky]))
        assert [(label, attempt) for label, attempt, _, _ in events] == [
            ("flaky", 2),
            ("flaky", 3),
        ]
        assert all(max_attempts == 3 for _, _, max_attempts, _ in events)


class TestOnErrorRaise:
    def test_exhausted_unit_raises_with_full_history(self, tmp_path):
        broken = BrokenCell(key=("broken",), label="broken", method="-")
        plan = plan_of([broken])
        with pytest.raises(PlanExecutionError, match="persistent failure") as info:
            ParallelExecutor(
                backend=SerialBackend(),
                on_error="raise",
                retry_policy=RetryPolicy(max_retries=2, backoff_base=0.0),
            ).run(plan)
        failures = info.value.failures
        assert [f.attempts for f in failures] == [1, 2, 3]
        assert all(f.label == "broken" for f in failures)
        assert all(f.backend == "serial" for f in failures)
        assert all("ValidationError: persistent failure" in f.error for f in failures)
        token = unit_token(broken, plan.settings)
        assert all(f.token == token for f in failures)

    def test_failure_record_carries_a_traceback(self, tmp_path):
        broken = BrokenCell(key=("broken",), label="broken", method="-")
        with pytest.raises(PlanExecutionError) as info:
            ParallelExecutor(backend=SerialBackend(), max_retries=0).run(
                plan_of([broken])
            )
        (failure,) = info.value.failures
        assert failure.traceback is not None
        assert "persistent failure" in failure.traceback

    def test_pool_failure_record_carries_worker_traceback(self, tmp_path):
        broken = BrokenCell(key=("broken",), label="broken", method="-")
        with pytest.raises(PlanExecutionError) as info:
            ParallelExecutor(
                backend=ProcessPoolBackend(2), max_retries=0
            ).run(plan_of([broken, study_cell()]))
        failure = info.value.failures[0]
        assert failure.traceback is not None
        assert "persistent failure" in failure.traceback


class TestOnErrorContinue:
    def test_quarantine_returns_survivors_and_failures(self, tmp_path):
        broken = BrokenCell(key=("broken",), label="broken", method="-")
        good = [study_cell("Wilson"), study_cell("aHPD")]
        plan = plan_of([good[0], broken, good[1]])
        outcome = ParallelExecutor(
            backend=SerialBackend(),
            on_error="continue",
            retry_policy=RetryPolicy(max_retries=1, backoff_base=0.0),
        ).run(plan)
        assert len(outcome.failures) == 1
        failure = outcome.failures[0]
        assert failure.label == "broken"
        assert failure.attempts == 2
        # Every healthy cell still completed, in plan order.
        assert [r.cell.key for r in outcome.cells] == [c.key for c in good]
        assert set(outcome.results) == {c.key for c in good}
        assert "1 FAILED" in outcome.summary()

    def test_never_succeeding_cell_is_quarantined(self, tmp_path):
        flaky = FlakyCell(
            key=("flaky",),
            label="flaky",
            method="-",
            marker_dir=str(tmp_path / "attempts"),
            fail_times=50,  # never succeeds within any retry budget
        )
        plan = plan_of([flaky, study_cell()])
        outcome = ParallelExecutor(
            backend=SerialBackend(), on_error="continue", max_retries=0
        ).run(plan)
        assert [f.label for f in outcome.failures] == ["flaky"]
        assert set(outcome.results) == {study_cell().key}

    def test_quarantined_shard_blocks_the_parent_merge(self):
        # A failed shard quarantines its whole parent cell: even with
        # every sibling shard finished, no partial merge may masquerade
        # as the cell's result.
        from repro.runtime import PlanScheduler
        from repro.runtime.backends import run_task
        from repro.runtime.faults import failure_from
        from repro.runtime.scheduler import task_of

        plan = plan_of([study_cell()], repetitions=4)
        scheduler = PlanScheduler(plan, default_chunk=2)
        items = scheduler.scan()
        shard_items = [item for item in items if item[0] == "shard"]
        assert len(shard_items) == 2
        bad, good = shard_items
        failure = failure_from(
            task_of(bad), "token", 1, ValidationError("shard died"), "serial"
        )
        scheduler.quarantine(bad, failure)
        value, seconds = run_task(task_of(good), plan.settings)
        scheduler.finish(good, value, seconds)
        assert scheduler.cells() == ()
        assert [f.label for f in scheduler.failed()] == [failure.label]

    def test_failure_update_hook_fires_on_quarantine(self, tmp_path):
        quarantined = []

        class Recorder:
            def __call__(self, done, total, result):
                pass

            def failure_update(self, failure):
                quarantined.append(failure.label)

        broken = BrokenCell(key=("broken",), label="broken", method="-")
        ParallelExecutor(
            backend=SerialBackend(),
            progress=Recorder(),
            on_error="continue",
            max_retries=0,
        ).run(plan_of([broken, study_cell()]))
        assert quarantined == ["broken"]

    def test_progress_reporter_prints_retry_and_quarantine_lines(
        self, tmp_path, capsys
    ):
        broken = BrokenCell(key=("broken",), label="broken", method="-")
        ParallelExecutor(
            backend=SerialBackend(),
            progress=True,
            on_error="continue",
            retry_policy=RetryPolicy(max_retries=1, backoff_base=0.0),
        ).run(plan_of([broken, study_cell()]))
        err = capsys.readouterr().err
        assert "[retry 2/2] broken" in err
        assert "[quarantined] broken" in err


class TestCliWiring:
    def test_study_cli_passes_fault_knobs_to_the_executor(self, monkeypatch):
        import repro.cli as cli

        captured = {}

        class FakeExecutor:
            @classmethod
            def from_context(cls, context):
                captured.update(context.describe())
                return cls()

            def run(self, plan):
                raise ValidationError("stop here")

        monkeypatch.setattr(cli, "ParallelExecutor", FakeExecutor)
        rc = cli.main(
            [
                "study",
                "--datasets",
                "NELL",
                "--reps",
                "2",
                "--max-retries",
                "2",
                "--on-error",
                "continue",
                "--quiet",
            ]
        )
        assert rc == 1  # the fake aborted the run after construction
        assert captured["max_retries"] == 2
        assert captured["on_error"] == "continue"

    def test_experiments_cli_configures_fault_knobs(self, monkeypatch):
        import repro.experiments.__main__ as exp_main

        captured = {}
        monkeypatch.setattr(
            exp_main, "configure", lambda **kwargs: captured.update(kwargs)
        )
        # An unknown experiment id exits right after configure() — the
        # wiring is exercised without running a real grid.
        rc = exp_main.main(
            ["nope", "--max-retries", "3", "--on-error", "continue"]
        )
        assert rc == 2
        context = captured["context"].describe()
        assert context["max_retries"] == 3
        assert context["on_error"] == "continue"

    def test_study_cli_reports_failed_cells_and_exits_nonzero(
        self, monkeypatch, capsys, tmp_path
    ):
        from repro.cli import main

        # Route the study through on_error=continue with a method that
        # does not exist in the runner registry? No — all study methods
        # are real.  Instead prove the outcome-rendering path directly:
        # a run whose outcome carries failures exits 1 and prints them.
        import repro.cli as cli

        broken = BrokenCell(key=("broken",), label="broken", method="-")
        outcome = ParallelExecutor(
            backend=SerialBackend(), on_error="continue", max_retries=0
        ).run(plan_of([broken, study_cell()]))

        class CannedExecutor:
            @classmethod
            def from_context(cls, context):
                return cls()

            def run(self, plan):
                return outcome

        monkeypatch.setattr(cli, "ParallelExecutor", CannedExecutor)
        rc = main(["study", "--datasets", "NELL", "--reps", "2", "--quiet"])
        assert rc == 1
        captured = capsys.readouterr()
        assert "FAILED broken" in captured.err
        assert "1 FAILED" in captured.out
