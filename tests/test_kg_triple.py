"""Unit tests for the Triple value type."""

from __future__ import annotations

import pytest

from repro.exceptions import ValidationError
from repro.kg.triple import Triple


class TestTriple:
    def test_fields(self):
        t = Triple("e:a", "bornIn", "v:x")
        assert t.subject == "e:a"
        assert t.predicate == "bornIn"
        assert t.object == "v:x"

    def test_as_tuple(self):
        assert Triple("s", "p", "o").as_tuple() == ("s", "p", "o")

    def test_equality_and_hash(self):
        a = Triple("s", "p", "o")
        b = Triple("s", "p", "o")
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_immutable(self):
        t = Triple("s", "p", "o")
        with pytest.raises(AttributeError):
            t.subject = "other"

    @pytest.mark.parametrize("field", ["subject", "predicate", "object"])
    def test_rejects_empty_field(self, field):
        kwargs = {"subject": "s", "predicate": "p", "object": "o"}
        kwargs[field] = ""
        with pytest.raises(ValidationError):
            Triple(**kwargs)

    def test_rejects_non_string(self):
        with pytest.raises(ValidationError):
            Triple("s", "p", 42)  # type: ignore[arg-type]

    def test_str_rendering(self):
        assert str(Triple("s", "p", "o")) == "(s, p, o)"
