"""Smoke tests for the sequential-coverage experiment module."""

from __future__ import annotations

from repro.experiments.config import ExperimentSettings
from repro.experiments.sequential_coverage import run_sequential_coverage


class TestSequentialCoverageExperiment:
    def test_structure(self):
        report = run_sequential_coverage(
            ExperimentSettings(repetitions=20), mus=(0.91, 0.54)
        )
        assert [row["method"] for row in report.rows] == ["Wald", "Wilson", "aHPD"]
        for row in report.rows:
            for column in ("mu=0.91", "mu=0.54"):
                assert str(row[column]).endswith("%")

    def test_registered_in_cli(self):
        from repro.experiments import EXPERIMENTS

        assert "sequential-coverage" in EXPERIMENTS

    def test_mean_stopping_reported(self):
        report = run_sequential_coverage(
            ExperimentSettings(repetitions=10), mus=(0.91,)
        )
        for row in report.rows:
            assert float(row["mean n @0.91"]) >= 30
