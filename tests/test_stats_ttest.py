"""Unit tests for the two-sample t-tests against scipy's reference."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.exceptions import ValidationError
from repro.stats.ttest import independent_ttest, welch_ttest


@pytest.fixture
def samples():
    rng = np.random.default_rng(5)
    a = rng.normal(10.0, 2.0, size=80)
    b = rng.normal(11.0, 3.0, size=120)
    return a, b


class TestIndependentTTest:
    def test_matches_scipy(self, samples):
        a, b = samples
        ours = independent_ttest(a, b)
        ref = scipy_stats.ttest_ind(a, b, equal_var=True)
        assert ours.statistic == pytest.approx(ref.statistic)
        assert ours.pvalue == pytest.approx(ref.pvalue)
        assert ours.dof == len(a) + len(b) - 2

    def test_identical_samples_not_significant(self):
        sample = [1.0, 2.0, 3.0, 4.0]
        result = independent_ttest(sample, sample)
        assert result.statistic == 0.0
        assert result.pvalue == pytest.approx(1.0)
        assert not result.significant()

    def test_clearly_different_is_significant(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0.0, 1.0, 200)
        b = rng.normal(5.0, 1.0, 200)
        assert independent_ttest(a, b).significant(0.01)

    def test_sign_convention(self):
        result = independent_ttest([5.0, 6.0, 7.0], [1.0, 2.0, 3.0])
        assert result.statistic > 0

    def test_constant_equal_samples(self):
        result = independent_ttest([2.0, 2.0, 2.0], [2.0, 2.0])
        assert result.pvalue == 1.0

    def test_constant_different_samples(self):
        result = independent_ttest([2.0, 2.0, 2.0], [3.0, 3.0])
        assert result.pvalue == 0.0
        assert result.significant()

    @pytest.mark.parametrize("bad", [[], [1.0]])
    def test_rejects_tiny_samples(self, bad):
        with pytest.raises(ValidationError):
            independent_ttest(bad, [1.0, 2.0])

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            independent_ttest([1.0, float("nan")], [1.0, 2.0])

    def test_rejects_2d(self):
        with pytest.raises(ValidationError):
            independent_ttest([[1.0, 2.0]], [1.0, 2.0])


class TestWelchTTest:
    def test_matches_scipy(self, samples):
        a, b = samples
        ours = welch_ttest(a, b)
        ref = scipy_stats.ttest_ind(a, b, equal_var=False)
        assert ours.statistic == pytest.approx(ref.statistic)
        assert ours.pvalue == pytest.approx(ref.pvalue)

    def test_dof_below_pooled_for_unequal_variances(self, samples):
        a, b = samples
        assert welch_ttest(a, b).dof < independent_ttest(a, b).dof

    def test_significance_threshold(self):
        rng = np.random.default_rng(1)
        a = rng.normal(0, 1, 50)
        b = rng.normal(0.05, 1, 50)
        result = welch_ttest(a, b)
        assert not result.significant(0.01)
