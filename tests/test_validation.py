"""Unit tests for the shared validation helpers."""

from __future__ import annotations

import math

import pytest

from repro._validation import (
    check_alpha,
    check_counts,
    check_fraction_pair,
    check_in_unit_interval,
    check_non_negative,
    check_non_negative_int,
    check_not_empty,
    check_positive,
    check_positive_int,
    check_probability,
)
from repro.exceptions import ValidationError


class TestCheckProbability:
    def test_accepts_bounds(self):
        assert check_probability(0.0) == 0.0
        assert check_probability(1.0) == 1.0
        assert check_probability(0.5) == 0.5

    @pytest.mark.parametrize("bad", [-0.01, 1.01, math.nan, math.inf, -math.inf])
    def test_rejects_out_of_range(self, bad):
        with pytest.raises(ValidationError):
            check_probability(bad)

    def test_rejects_non_numeric(self):
        with pytest.raises(ValidationError):
            check_probability("half")

    def test_coerces_int(self):
        assert check_probability(1) == 1.0

    def test_error_mentions_name(self):
        with pytest.raises(ValidationError, match="accuracy"):
            check_probability(2.0, name="accuracy")


class TestCheckUnitInterval:
    def test_open_left_rejects_zero(self):
        with pytest.raises(ValidationError):
            check_in_unit_interval(0.0, open_left=True)

    def test_open_right_rejects_one(self):
        with pytest.raises(ValidationError):
            check_in_unit_interval(1.0, open_right=True)

    def test_open_both_accepts_interior(self):
        assert check_in_unit_interval(0.5, open_left=True, open_right=True) == 0.5


class TestCheckAlpha:
    @pytest.mark.parametrize("alpha", [0.10, 0.05, 0.01])
    def test_accepts_paper_levels(self, alpha):
        assert check_alpha(alpha) == alpha

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.1, 1.5])
    def test_rejects_degenerate(self, bad):
        with pytest.raises(ValidationError):
            check_alpha(bad)


class TestPositiveChecks:
    def test_positive_accepts(self):
        assert check_positive(0.1) == 0.1

    def test_positive_rejects_zero(self):
        with pytest.raises(ValidationError):
            check_positive(0.0)

    def test_non_negative_accepts_zero(self):
        assert check_non_negative(0.0) == 0.0

    def test_non_negative_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_non_negative(-1e-9)


class TestIntChecks:
    def test_positive_int(self):
        assert check_positive_int(3) == 3

    def test_positive_int_accepts_float_whole(self):
        assert check_positive_int(3.0) == 3

    @pytest.mark.parametrize("bad", [0, -1, 2.5, "x", True])
    def test_positive_int_rejects(self, bad):
        with pytest.raises(ValidationError):
            check_positive_int(bad)

    def test_non_negative_int_accepts_zero(self):
        assert check_non_negative_int(0) == 0


class TestCheckCounts:
    def test_valid(self):
        assert check_counts(3, 10) == (3, 10)

    def test_boundaries(self):
        assert check_counts(0, 5) == (0, 5)
        assert check_counts(5, 5) == (5, 5)

    def test_successes_exceed_trials(self):
        with pytest.raises(ValidationError):
            check_counts(6, 5)

    def test_zero_trials(self):
        with pytest.raises(ValidationError):
            check_counts(0, 0)


class TestFractionPair:
    def test_ordered(self):
        assert check_fraction_pair(0.2, 0.8) == (0.2, 0.8)

    def test_equal_allowed(self):
        assert check_fraction_pair(0.5, 0.5) == (0.5, 0.5)

    def test_rejects_inverted(self):
        with pytest.raises(ValidationError):
            check_fraction_pair(0.8, 0.2)


class TestNotEmpty:
    def test_accepts_list(self):
        assert check_not_empty([1, 2]) == [1, 2]

    def test_materialises_iterator(self):
        assert check_not_empty(iter([1])) == [1]

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            check_not_empty([])
