"""Unit tests for Two-stage Weighted Cluster Sampling and WCS."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InsufficientSampleError, SamplingError, ValidationError
from repro.sampling.twcs import TwoStageWeightedClusterSampling
from repro.sampling.wcs import WeightedClusterSampling


class TestStageOne:
    def test_pps_probabilities(self, tiny_kg):
        # tiny_kg cluster sizes are (2, 3, 1): stage-1 draw probabilities
        # must be proportional to size.
        twcs = TwoStageWeightedClusterSampling(m=3)
        counts = np.zeros(3)
        for seed in range(4_000):
            rng = np.random.default_rng(seed)
            batch = twcs.draw(tiny_kg, twcs.new_state(), units=1, rng=rng)
            cluster = int(tiny_kg.subjects(batch.indices[:1])[0])
            counts[cluster] += 1
        freq = counts / counts.sum()
        expected = tiny_kg.cluster_sizes / tiny_kg.num_triples
        assert np.allclose(freq, expected, atol=0.03)


class TestStageTwo:
    def test_cap_respected(self, medium_kg, rng):
        twcs = TwoStageWeightedClusterSampling(m=3)
        batch = twcs.draw(medium_kg, twcs.new_state(), units=20, rng=rng)
        for unit in batch.unit_slices:
            size = unit.stop - unit.start
            assert 1 <= size <= 3

    def test_small_cluster_taken_whole(self, tiny_kg, rng):
        twcs = TwoStageWeightedClusterSampling(m=5)
        batch = twcs.draw(tiny_kg, twcs.new_state(), units=1, rng=rng)
        cluster = int(tiny_kg.subjects(batch.indices[:1])[0])
        assert batch.num_triples == tiny_kg.cluster_size(cluster)

    def test_no_duplicate_triples_within_unit(self, medium_kg, rng):
        twcs = TwoStageWeightedClusterSampling(m=3)
        batch = twcs.draw(medium_kg, twcs.new_state(), units=50, rng=rng)
        for unit in batch.unit_slices:
            chunk = batch.indices[unit]
            assert len(set(chunk.tolist())) == chunk.size

    def test_unit_triples_share_cluster(self, medium_kg, rng):
        twcs = TwoStageWeightedClusterSampling(m=3)
        batch = twcs.draw(medium_kg, twcs.new_state(), units=10, rng=rng)
        for unit in batch.unit_slices:
            subs = batch.subjects[unit]
            assert len(set(subs.tolist())) == 1

    def test_rejects_bad_m(self):
        with pytest.raises(ValidationError):
            TwoStageWeightedClusterSampling(m=0)


class TestUpdateAndEvidence:
    def _filled_state(self, kg, units, seed=0, m=3):
        twcs = TwoStageWeightedClusterSampling(m=m)
        state = twcs.new_state()
        rng = np.random.default_rng(seed)
        batch = twcs.draw(kg, state, units=units, rng=rng)
        twcs.update(state, batch, kg.labels(batch.indices))
        return twcs, state

    def test_cluster_means_recorded(self, medium_kg):
        twcs, state = self._filled_state(medium_kg, units=15)
        assert len(state.cluster_means) == 15
        assert all(0.0 <= m <= 1.0 for m in state.cluster_means)

    def test_evidence_needs_two_clusters(self, medium_kg):
        twcs, state = self._filled_state(medium_kg, units=1)
        with pytest.raises(InsufficientSampleError):
            twcs.evidence(state)

    def test_evidence_point_estimate(self, medium_kg):
        twcs, state = self._filled_state(medium_kg, units=40)
        ev = twcs.evidence(state)
        assert ev.mu_hat == pytest.approx(np.mean(state.cluster_means))
        assert ev.n_annotated == state.n_annotated

    def test_estimator_unbiased_on_kg(self, medium_kg):
        estimates = []
        for seed in range(250):
            twcs, state = self._filled_state(medium_kg, units=40, seed=seed)
            estimates.append(twcs.evidence(state).mu_hat)
        assert np.mean(estimates) == pytest.approx(medium_kg.accuracy, abs=0.015)

    def test_update_requires_twcs_state(self, medium_kg, rng):
        from repro.sampling.srs import SimpleRandomSampling

        twcs = TwoStageWeightedClusterSampling(m=3)
        srs_state = SimpleRandomSampling().new_state()
        batch = twcs.draw(medium_kg, twcs.new_state(), units=1, rng=rng)
        with pytest.raises(SamplingError):
            twcs.update(srs_state, batch, medium_kg.labels(batch.indices))

    def test_min_units_is_two(self):
        assert TwoStageWeightedClusterSampling(m=3).min_units == 2


class TestWCS:
    def test_annotates_whole_clusters(self, medium_kg, rng):
        wcs = WeightedClusterSampling()
        batch = wcs.draw(medium_kg, wcs.new_state(), units=5, rng=rng)
        for unit in batch.unit_slices:
            chunk = batch.indices[unit]
            cluster = int(medium_kg.subjects(chunk[:1])[0])
            assert chunk.size == medium_kg.cluster_size(cluster)

    def test_is_twcs_with_unbounded_m(self):
        wcs = WeightedClusterSampling()
        assert wcs.m is None
        assert wcs.name == "WCS"


class TestVectorisedStageTwo:
    def test_capped_members_uniform(self, medium_kg):
        # Every triple of an oversized cluster must be equally likely in
        # the random-keys m-subset.  Find a cluster larger than m and
        # count member appearances over repeated conditional draws.
        twcs = TwoStageWeightedClusterSampling(m=2)
        sizes = medium_kg.cluster_sizes
        target = int(np.argmax(sizes))
        size = int(sizes[target])
        assert size > 2
        counts = np.zeros(size)
        lo = int(medium_kg.cluster_offsets[target])
        rng = np.random.default_rng(9)
        hits = 0
        while hits < 400:
            batch = twcs.draw(medium_kg, twcs.new_state(), units=8, rng=rng)
            for unit in batch.unit_slices:
                chunk = batch.indices[unit]
                if int(medium_kg.subjects(chunk[:1])[0]) == target:
                    hits += 1
                    for index in chunk:
                        counts[int(index) - lo] += 1
        freq = counts / counts.sum()
        assert np.allclose(freq, 1.0 / size, atol=0.035)

    def test_memory_fallback_equivalent_invariants(self, medium_kg, rng):
        # Force the per-cluster fallback path and check it obeys the
        # same cap/no-dup/one-cluster invariants as the batched path.
        twcs = TwoStageWeightedClusterSampling(m=3)
        twcs._KEYS_BUDGET = 0
        batch = twcs.draw(medium_kg, twcs.new_state(), units=25, rng=rng)
        for unit in batch.unit_slices:
            chunk = batch.indices[unit]
            assert 1 <= chunk.size <= 3
            assert len(set(chunk.tolist())) == chunk.size
            assert len(set(batch.subjects[unit].tolist())) == 1

    def test_update_means_match_slice_recompute(self, medium_kg, rng):
        twcs = TwoStageWeightedClusterSampling(m=3)
        state = twcs.new_state()
        batch = twcs.draw(medium_kg, state, units=30, rng=rng)
        labels = medium_kg.labels(batch.indices)
        twcs.update(state, batch, labels)
        reference = [float(labels[unit].mean()) for unit in batch.unit_slices]
        assert state.cluster_means == reference
