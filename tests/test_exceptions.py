"""Unit tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro import exceptions as exc


class TestHierarchy:
    @pytest.mark.parametrize(
        "subclass",
        [
            exc.ValidationError,
            exc.KGError,
            exc.AnnotationError,
            exc.SamplingError,
            exc.EstimationError,
            exc.IntervalError,
            exc.EvaluationError,
            exc.ExperimentError,
        ],
    )
    def test_all_derive_from_repro_error(self, subclass):
        assert issubclass(subclass, exc.ReproError)

    def test_validation_error_is_value_error(self):
        # So that callers using stdlib idioms still catch bad arguments.
        assert issubclass(exc.ValidationError, ValueError)

    def test_lookup_errors_are_key_errors(self):
        assert issubclass(exc.UnknownEntityError, KeyError)
        assert issubclass(exc.UnknownTripleError, KeyError)
        assert issubclass(exc.MissingLabelError, KeyError)

    def test_interval_sub_hierarchy(self):
        assert issubclass(exc.PriorError, exc.IntervalError)
        assert issubclass(exc.OptimizationError, exc.IntervalError)

    def test_evaluation_sub_hierarchy(self):
        assert issubclass(exc.ConvergenceError, exc.EvaluationError)

    def test_sampling_sub_hierarchy(self):
        assert issubclass(exc.InsufficientSampleError, exc.SamplingError)

    def test_catching_base_catches_library_errors(self):
        with pytest.raises(exc.ReproError):
            raise exc.ConvergenceError("budget exhausted")

    def test_all_exports_exist(self):
        for name in exc.__all__:
            assert hasattr(exc, name)
