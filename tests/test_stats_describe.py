"""Unit tests for descriptive summaries."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.stats.describe import Summary, summarize


class TestSummarize:
    def test_basic_statistics(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.mean == pytest.approx(2.5)
        assert summary.std == pytest.approx(np.std([1, 2, 3, 4], ddof=1))
        assert summary.count == 4
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0

    def test_singleton_std_zero(self):
        summary = summarize([7.0])
        assert summary.std == 0.0
        assert summary.count == 1

    def test_sem(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.sem == pytest.approx(summary.std / math.sqrt(4))

    def test_accepts_numpy_array(self):
        summary = summarize(np.arange(10, dtype=float))
        assert summary.mean == pytest.approx(4.5)

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            summarize([])

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            summarize([1.0, float("nan")])

    def test_rejects_2d(self):
        with pytest.raises(ValidationError):
            summarize(np.ones((2, 2)))


class TestSummaryFormat:
    def test_paper_integer_format(self):
        summary = Summary(mean=96.4, std=44.2, count=1000, minimum=30, maximum=300)
        assert summary.format(0) == "96±44"

    def test_paper_cost_format(self):
        summary = Summary(mean=1.757, std=0.791, count=1000, minimum=0.5, maximum=5.0)
        assert summary.format(2) == "1.76±0.79"

    def test_rejects_negative_digits(self):
        summary = summarize([1.0, 2.0])
        with pytest.raises(ValidationError):
            summary.format(-1)

    def test_str_uses_two_digits(self):
        assert str(summarize([1.0, 2.0])) == "1.50±0.71"
