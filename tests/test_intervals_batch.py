"""Batch interval engine: batch/scalar agreement and container semantics.

The contract of :mod:`repro.intervals.batch` is that ``compute_batch``
matches a per-element ``compute`` loop to 1e-8 for every interval
method, including the edge outcomes (``tau = 0``, ``tau = n``, the flat
posterior) and the bathtub error case.  These tests sweep outcome
grids, fractional effective counts, and all three alphas used by the
paper.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.estimators.base import Evidence
from repro.exceptions import IntervalError, ValidationError
from repro.intervals import (
    AdaptiveHPD,
    AgrestiCoullInterval,
    ArcsineInterval,
    BatchIntervals,
    ClopperPearsonInterval,
    ETCredibleInterval,
    HPDCredibleInterval,
    LogitInterval,
    WaldInterval,
    WilsonInterval,
)
from repro.intervals.batch import et_bounds_batch, hpd_bounds_batch
from repro.intervals.hpd import hpd_bounds
from repro.intervals.posterior import BetaPosterior
from repro.intervals.priors import JEFFREYS, KERMAN, UNIFORM
from repro.stats.beta import beta_cdf_batch, beta_pdf_batch, beta_ppf_batch

AGREEMENT_TOL = 1e-8

ALL_METHODS = (
    WaldInterval(),
    WilsonInterval(),
    AgrestiCoullInterval(),
    ClopperPearsonInterval(),
    ArcsineInterval(),
    LogitInterval(),
    ETCredibleInterval(),
    ETCredibleInterval(prior=KERMAN),
    HPDCredibleInterval(),
    HPDCredibleInterval(prior=UNIFORM),
    AdaptiveHPD(),
)


def outcome_evidences(n: int) -> list[Evidence]:
    """Every binomial outcome at sample size *n*, edges included."""
    return [Evidence.from_counts(tau, n) for tau in range(n + 1)]


def assert_batch_matches_scalar(method, evidences, alpha):
    batch = method.compute_batch(evidences, alpha)
    assert len(batch) == len(evidences)
    for i, evidence in enumerate(evidences):
        scalar = method.compute(evidence, alpha)
        assert batch.lower[i] == pytest.approx(scalar.lower, abs=AGREEMENT_TOL)
        assert batch.upper[i] == pytest.approx(scalar.upper, abs=AGREEMENT_TOL)


@pytest.mark.parametrize("method", ALL_METHODS, ids=lambda m: m.name)
@pytest.mark.parametrize("alpha", [0.10, 0.05, 0.01])
def test_batch_agrees_with_scalar_full_outcome_grid(method, alpha):
    # n=30 is the paper's coverage cell; includes tau=0 and tau=n edges.
    assert_batch_matches_scalar(method, outcome_evidences(30), alpha)


@pytest.mark.parametrize("method", ALL_METHODS, ids=lambda m: m.name)
def test_batch_agrees_with_scalar_large_n(method):
    evidences = [Evidence.from_counts(tau, 500) for tau in range(0, 501, 13)]
    assert_batch_matches_scalar(method, evidences, 0.05)


@pytest.mark.parametrize("method", ALL_METHODS, ids=lambda m: m.name)
def test_batch_agrees_on_fractional_effective_counts(method):
    # Design-effect-corrected evidences carry fractional counts.
    rng = np.random.default_rng(7)
    evidences = []
    for _ in range(40):
        n_eff = float(rng.uniform(5.0, 400.0))
        tau_eff = float(rng.uniform(0.0, n_eff))
        mu = tau_eff / n_eff
        evidences.append(
            Evidence(
                mu_hat=mu,
                variance=mu * (1.0 - mu) / n_eff if 0.0 < mu < 1.0 else 1e-6,
                n_effective=n_eff,
                tau_effective=tau_eff,
                n_annotated=int(round(n_eff)),
            )
        )
    assert_batch_matches_scalar(method, evidences, 0.05)


def test_batch_single_element_and_flat_posterior():
    # Uniform prior with no effective data weight approaches the flat
    # posterior; the dedicated closed form must kick in at a = b = 1.
    lower, upper = hpd_bounds_batch(np.array([1.0]), np.array([1.0]), 0.05)
    assert lower[0] == pytest.approx(0.025)
    assert upper[0] == pytest.approx(0.975)


def test_hpd_batch_monotone_shapes_match_closed_forms():
    # tau = n under Jeffreys: increasing posterior, Eq. 10.
    post = BetaPosterior.from_counts(JEFFREYS, 30, 30)
    lower, upper = hpd_bounds_batch(np.array([post.a]), np.array([post.b]), 0.05)
    s_lower, s_upper = hpd_bounds(post, 0.05)
    assert upper[0] == 1.0
    assert lower[0] == pytest.approx(s_lower, abs=AGREEMENT_TOL)
    # tau = 0: decreasing posterior, Eq. 11.
    post = BetaPosterior.from_counts(JEFFREYS, 0, 30)
    lower, upper = hpd_bounds_batch(np.array([post.a]), np.array([post.b]), 0.05)
    s_lower, s_upper = hpd_bounds(post, 0.05)
    assert lower[0] == 0.0
    assert upper[0] == pytest.approx(s_upper, abs=AGREEMENT_TOL)


def test_ahpd_batch_preserves_winning_prior_labels():
    method = AdaptiveHPD()
    evidences = outcome_evidences(30)
    batch = method.compute_batch(evidences, 0.05)
    for i, evidence in enumerate(evidences):
        assert batch[i].method == method.compute(evidence, 0.05).method


def test_posterior_shapes_batch_validates_like_scalar():
    from repro.intervals.batch import posterior_shapes_batch

    # Grossly invalid counts fail on the batch path exactly as
    # BetaPosterior.from_counts fails on the scalar path.
    with pytest.raises(ValidationError):
        posterior_shapes_batch(JEFFREYS, np.array([40.0]), np.array([30.0]))
    with pytest.raises(ValidationError):
        posterior_shapes_batch(JEFFREYS, np.array([-1.0]), np.array([30.0]))
    # Float-noise overshoot inside the scalar tolerance is clamped.
    a, b = posterior_shapes_batch(
        JEFFREYS, np.array([30.0 + 5e-10]), np.array([30.0])
    )
    assert a[0] == pytest.approx(JEFFREYS.a + 30.0)
    assert b[0] == pytest.approx(JEFFREYS.b)


def test_hpd_batch_bathtub_raises():
    with pytest.raises(IntervalError):
        hpd_bounds_batch(np.array([0.5, 2.0]), np.array([0.4, 3.0]), 0.05)


def test_hpd_batch_mixed_shapes_one_call():
    # Interior, increasing, decreasing, and flat rows in a single batch.
    a = np.array([10.0, 5.0, 0.5, 1.0])
    b = np.array([20.0, 0.5, 5.0, 1.0])
    lower, upper = hpd_bounds_batch(a, b, 0.05)
    for i in range(4):
        post = BetaPosterior(a=float(a[i]), b=float(b[i]), prior=JEFFREYS)
        s_lower, s_upper = hpd_bounds(post, 0.05)
        assert lower[i] == pytest.approx(s_lower, abs=AGREEMENT_TOL)
        assert upper[i] == pytest.approx(s_upper, abs=AGREEMENT_TOL)


def test_hpd_batch_random_interior_posteriors_agree():
    rng = np.random.default_rng(11)
    a = rng.uniform(1.01, 500.0, size=300)
    b = rng.uniform(1.01, 500.0, size=300)
    lower, upper = hpd_bounds_batch(a, b, 0.05)
    mass = beta_cdf_batch(upper, a, b) - beta_cdf_batch(lower, a, b)
    np.testing.assert_allclose(mass, 0.95, atol=1e-6)
    for i in range(0, 300, 17):
        post = BetaPosterior(a=float(a[i]), b=float(b[i]), prior=JEFFREYS)
        s_lower, s_upper = hpd_bounds(post, 0.05)
        assert lower[i] == pytest.approx(s_lower, abs=AGREEMENT_TOL)
        assert upper[i] == pytest.approx(s_upper, abs=AGREEMENT_TOL)


def test_et_batch_matches_posterior_ppf():
    a = np.array([3.5, 27.5, 100.0])
    b = np.array([3.5, 3.5, 2.0])
    lower, upper = et_bounds_batch(a, b, 0.05)
    np.testing.assert_allclose(lower, beta_ppf_batch(0.025, a, b))
    np.testing.assert_allclose(upper, beta_ppf_batch(0.975, a, b))


def test_default_compute_batch_loop_fallback():
    # A third-party method that never overrides compute_batch must get
    # the loop fallback from the ABC for free.
    from repro.intervals.base import Interval, IntervalMethod

    class Degenerate(IntervalMethod):
        name = "Degenerate"

        def compute(self, evidence, alpha):
            return Interval(
                lower=evidence.mu_hat,
                upper=evidence.mu_hat,
                alpha=alpha,
                method=self.name,
            )

    evidences = outcome_evidences(10)
    batch = Degenerate().compute_batch(evidences, 0.05)
    assert len(batch) == 11
    np.testing.assert_allclose(batch.lower, [e.mu_hat for e in evidences])
    assert batch.method == "Degenerate"


# ----------------------------------------------------------------------
# BatchIntervals container semantics
# ----------------------------------------------------------------------


def test_batch_intervals_mirrors_interval_accessors():
    method = WilsonInterval()
    evidences = outcome_evidences(12)
    batch = method.compute_batch(evidences, 0.05)
    assert batch.confidence == pytest.approx(0.95)
    np.testing.assert_allclose(batch.width, batch.upper - batch.lower)
    np.testing.assert_allclose(batch.moe, batch.width / 2.0)
    np.testing.assert_allclose(batch.midpoint, (batch.lower + batch.upper) / 2.0)
    for i, interval in enumerate(batch.to_intervals()):
        assert interval.lower == pytest.approx(float(batch.lower[i]))
        assert interval.upper == pytest.approx(float(batch.upper[i]))
        assert interval.method == method.name
        assert batch.contains(0.5)[i] == interval.contains(0.5)


def test_batch_intervals_clipped_stays_in_unit_interval():
    batch = WaldInterval().compute_batch(outcome_evidences(5), 0.05)
    clipped = batch.clipped()
    assert np.all(clipped.lower >= 0.0)
    assert np.all(clipped.upper <= 1.0)


def test_batch_intervals_rejects_disordered_bounds():
    with pytest.raises(ValidationError):
        BatchIntervals(lower=np.array([0.5]), upper=np.array([0.4]), alpha=0.05)


def test_batch_intervals_rejects_nan_bounds():
    # NaN rows must fail loudly, exactly like the scalar Interval.
    with pytest.raises(ValidationError):
        BatchIntervals(
            lower=np.array([0.1, np.nan]), upper=np.array([0.2, 0.3]), alpha=0.05
        )


def test_batch_intervals_rejects_shape_mismatch():
    with pytest.raises(ValidationError):
        BatchIntervals(
            lower=np.array([0.1, 0.2]), upper=np.array([0.3]), alpha=0.05
        )


# ----------------------------------------------------------------------
# Vectorised Beta helpers
# ----------------------------------------------------------------------


def test_beta_batch_helpers_match_scalar():
    from repro.stats.beta import beta_cdf, beta_pdf, beta_ppf

    rng = np.random.default_rng(3)
    a = rng.uniform(0.4, 80.0, size=25)
    b = rng.uniform(0.4, 80.0, size=25)
    x = rng.uniform(0.01, 0.99, size=25)
    pdf = beta_pdf_batch(x, a, b)
    cdf = beta_cdf_batch(x, a, b)
    ppf = beta_ppf_batch(cdf, a, b)
    for i in range(25):
        assert pdf[i] == pytest.approx(beta_pdf(x[i], a[i], b[i]), rel=1e-12)
        assert cdf[i] == pytest.approx(beta_cdf(x[i], a[i], b[i]), rel=1e-12)
        assert ppf[i] == pytest.approx(beta_ppf(cdf[i], a[i], b[i]), abs=1e-10)
    # Round-trip only where the CDF has not saturated to 0/1 (deep-tail
    # x values lose the quantile to float rounding on any code path).
    open_mask = (cdf > 1e-12) & (cdf < 1.0 - 1e-12)
    np.testing.assert_allclose(ppf[open_mask], x[open_mask], atol=1e-8)


def test_beta_batch_helpers_validate_shapes_and_quantiles():
    with pytest.raises(ValidationError):
        beta_pdf_batch(0.5, np.array([1.0, -2.0]), np.array([1.0, 1.0]))
    with pytest.raises(ValidationError):
        beta_ppf_batch(1.5, np.array([2.0]), np.array([2.0]))


# ----------------------------------------------------------------------
# Evidence fast-path constructor
# ----------------------------------------------------------------------


def test_from_counts_fast_matches_validating_path():
    for tau, n in [(0, 30), (15, 30), (30, 30), (7, 11)]:
        fast = Evidence.from_counts_fast(tau, n)
        slow = Evidence.from_counts(tau, n)
        assert fast == slow


def test_from_counts_still_validates():
    with pytest.raises(ValidationError):
        Evidence.from_counts(31, 30)
    with pytest.raises(ValidationError):
        Evidence.from_counts(1, 0)


# ----------------------------------------------------------------------
# Pooled solving: compute_batch_pooled and the solve_batch surface
# ----------------------------------------------------------------------

from hypothesis import given, settings as hyp_settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.intervals import (  # noqa: E402
    active_solve_pool,
    compute_batch_pooled,
    use_solve_pool,
)

segment_lists = st.lists(
    st.lists(
        st.tuples(st.integers(0, 25), st.integers(1, 25)).map(
            lambda pair: (min(pair), max(max(pair), 1))
        ),
        min_size=0,
        max_size=6,
    ),
    min_size=1,
    max_size=5,
)


@pytest.mark.parametrize("method", ALL_METHODS, ids=lambda m: m.name)
@given(segments=segment_lists, alpha=st.sampled_from([0.10, 0.05, 0.01]))
@hyp_settings(max_examples=25, deadline=None)
def test_pooled_slices_bit_identical_to_standalone(method, segments, alpha):
    # The broker's correctness foundation: pooling any segmentation of
    # evidences into one compute_batch and slicing back must reproduce
    # each segment's standalone compute_batch BYTE for byte — bounds,
    # labels, and metadata alike.
    evidence_segments = [
        [Evidence.from_counts_fast(tau, n) for tau, n in segment]
        for segment in segments
    ]
    pooled = compute_batch_pooled(method, evidence_segments, alpha)
    assert len(pooled) == len(evidence_segments)
    for batch, segment in zip(pooled, evidence_segments):
        alone = method.compute_batch(segment, alpha)
        assert batch.lower.tobytes() == alone.lower.tobytes()
        assert batch.upper.tobytes() == alone.upper.tobytes()
        assert batch.alpha == alone.alpha
        assert batch.method == alone.method
        assert batch.labels == alone.labels


def test_solve_batch_is_compute_batch_without_a_pool():
    evidences = outcome_evidences(8)
    for method in ALL_METHODS:
        direct = method.compute_batch(evidences, 0.05)
        routed = method.solve_batch(evidences, 0.05)
        assert routed.lower.tobytes() == direct.lower.tobytes()
        assert routed.upper.tobytes() == direct.upper.tobytes()


def test_solve_batch_routes_through_the_ambient_pool():
    class Recorder:
        def __init__(self):
            self.calls = []

        def solve(self, method, evidences, alpha):
            self.calls.append((method, tuple(evidences), alpha))
            return method.compute_batch(evidences, alpha)

    pool = Recorder()
    evidences = outcome_evidences(4)
    assert active_solve_pool() is None
    with use_solve_pool(pool):
        assert active_solve_pool() is pool
        WilsonInterval().solve_batch(evidences, 0.05)
    assert active_solve_pool() is None
    assert len(pool.calls) == 1
    assert pool.calls[0][2] == 0.05


def test_use_solve_pool_is_per_context():
    # Two threads installing different pools must not see each other's.
    import threading

    seen = {}

    def install(name):
        with use_solve_pool(name):
            time_ordered.wait()
            seen[name] = active_solve_pool()

    time_ordered = threading.Barrier(2)
    threads = [
        threading.Thread(target=install, args=(name,)) for name in ("a", "b")
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert seen == {"a": "a", "b": "b"}
