"""Unit tests for metrics and the evolving-KG auditor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation.dynamic import DynamicAuditor
from repro.evaluation.framework import EvaluationConfig
from repro.evaluation.metrics import cost_reduction, reduction_ratio, triples_reduction
from repro.evaluation.runner import StudyResult
from repro.exceptions import ValidationError
from repro.kg.generators import generate_profiled_kg
from repro.sampling.twcs import TwoStageWeightedClusterSampling


class TestReductionRatio:
    def test_cheaper_candidate_is_negative(self):
        assert reduction_ratio(2.0, 1.0) == pytest.approx(-0.5)

    def test_equal_is_zero(self):
        assert reduction_ratio(3.0, 3.0) == 0.0

    def test_rejects_zero_baseline(self):
        with pytest.raises(ValidationError):
            reduction_ratio(0.0, 1.0)

    def test_study_helpers(self):
        def study(label, cost):
            n = 20
            return StudyResult(
                label=label,
                triples=np.full(n, int(cost * 100)),
                cost_hours=np.full(n, cost),
                estimates=np.full(n, 0.9),
                entities=np.full(n, 10),
                converged=np.ones(n, dtype=bool),
            )

        baseline, candidate = study("w", 2.0), study("a", 1.0)
        assert cost_reduction(baseline, candidate) == pytest.approx(-0.5)
        assert triples_reduction(baseline, candidate) == pytest.approx(-0.5)


@pytest.fixture(scope="module")
def snapshots():
    base = generate_profiled_kg("dyn", 3_000, 1_000, accuracy=0.85, seed=0)
    update = generate_profiled_kg("upd", 1_500, 500, accuracy=0.85, seed=1)
    return [base, base.merge(update)]


class TestDynamicAuditor:
    def test_audit_round_produces_prior(self, snapshots):
        auditor = DynamicAuditor(strategy=TwoStageWeightedClusterSampling(m=3))
        record = auditor.audit_round(snapshots[0], rng=0)
        assert record.carried_prior is None
        assert record.posterior_prior.mean == pytest.approx(record.result.mu_hat, abs=0.01)
        assert record.result.converged

    def test_stream_carries_priors(self, snapshots):
        auditor = DynamicAuditor(strategy=TwoStageWeightedClusterSampling(m=3))
        records = auditor.audit_stream(snapshots, seed=0)
        assert records[0].carried_prior is None
        assert records[1].carried_prior is records[0].posterior_prior

    def test_carryover_zero_disables(self, snapshots):
        auditor = DynamicAuditor(
            strategy=TwoStageWeightedClusterSampling(m=3), carryover=0.0
        )
        records = auditor.audit_stream(snapshots, seed=0)
        assert records[1].carried_prior is None

    def test_carried_prior_reduces_cost_when_stable(self, snapshots):
        strategy = TwoStageWeightedClusterSampling(m=3)
        config = EvaluationConfig()
        carried = DynamicAuditor(strategy=strategy, config=config, carryover=1.0)
        independent = DynamicAuditor(strategy=strategy, config=config, carryover=0.0)
        triples_carried = []
        triples_indep = []
        for seed in range(8):
            triples_carried.append(
                carried.audit_stream(snapshots, seed=seed)[1].result.n_triples
            )
            triples_indep.append(
                independent.audit_stream(snapshots, seed=seed)[1].result.n_triples
            )
        assert np.mean(triples_carried) < np.mean(triples_indep)

    def test_drift_still_converges_correctly(self):
        # A deceptive carried prior must not corrupt the estimate.
        base = generate_profiled_kg("dyn", 3_000, 1_000, accuracy=0.85, seed=0)
        drifted = base.merge(
            generate_profiled_kg("bad", 4_000, 1_500, accuracy=0.3, seed=2)
        )
        auditor = DynamicAuditor(strategy=TwoStageWeightedClusterSampling(m=3))
        records = auditor.audit_stream([base, drifted], seed=0)
        final = records[1].result
        assert final.converged
        assert final.mu_hat == pytest.approx(drifted.accuracy, abs=0.08)

    def test_prior_strength_capped(self, snapshots):
        auditor = DynamicAuditor(
            strategy=TwoStageWeightedClusterSampling(m=3), max_prior_strength=50.0
        )
        record = auditor.audit_round(snapshots[0], rng=0)
        assert record.posterior_prior.strength <= 50.0 + 1e-9

    def test_rejects_bad_carryover(self):
        with pytest.raises(ValidationError):
            DynamicAuditor(
                strategy=TwoStageWeightedClusterSampling(m=3), carryover=1.5
            )
