"""Unit tests for Simple Random Sampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InsufficientSampleError, SamplingError
from repro.sampling.srs import SimpleRandomSampling


class TestDraw:
    def test_batch_shape(self, medium_kg, rng):
        srs = SimpleRandomSampling()
        state = srs.new_state()
        batch = srs.draw(medium_kg, state, units=10, rng=rng)
        assert batch.num_triples == 10
        assert batch.num_units == 10
        assert batch.subjects.shape == (10,)

    def test_no_duplicates_within_batch(self, medium_kg, rng):
        srs = SimpleRandomSampling()
        state = srs.new_state()
        batch = srs.draw(medium_kg, state, units=500, rng=rng)
        assert len(set(batch.indices.tolist())) == 500

    def test_without_replacement_across_batches(self, tiny_kg, rng):
        srs = SimpleRandomSampling()
        state = srs.new_state()
        drawn: set[int] = set()
        for _ in range(3):
            batch = srs.draw(tiny_kg, state, units=2, rng=rng)
            labels = tiny_kg.labels(batch.indices)
            srs.update(state, batch, labels)
            for idx in batch.indices:
                assert int(idx) not in drawn
                drawn.add(int(idx))

    def test_exhaustion_raises(self, tiny_kg, rng):
        srs = SimpleRandomSampling()
        state = srs.new_state()
        batch = srs.draw(tiny_kg, state, units=6, rng=rng)
        srs.update(state, batch, tiny_kg.labels(batch.indices))
        with pytest.raises(InsufficientSampleError):
            srs.draw(tiny_kg, state, units=1, rng=rng)

    def test_rejects_zero_units(self, tiny_kg, rng):
        srs = SimpleRandomSampling()
        with pytest.raises(SamplingError):
            srs.draw(tiny_kg, srs.new_state(), units=0, rng=rng)

    def test_uniformity(self, tiny_kg):
        # Each triple should be drawn first with equal probability.
        srs = SimpleRandomSampling()
        counts = np.zeros(6)
        for seed in range(3_000):
            rng = np.random.default_rng(seed)
            batch = srs.draw(tiny_kg, srs.new_state(), units=1, rng=rng)
            counts[batch.indices[0]] += 1
        freq = counts / counts.sum()
        assert np.allclose(freq, 1 / 6, atol=0.03)


class TestUpdateAndEvidence:
    def test_counts_accumulate(self, medium_kg, rng):
        srs = SimpleRandomSampling()
        state = srs.new_state()
        for _ in range(4):
            batch = srs.draw(medium_kg, state, units=5, rng=rng)
            srs.update(state, batch, medium_kg.labels(batch.indices))
        assert state.n_annotated == 20
        assert state.n_units == 20
        assert len(state.seen_triples) == 20

    def test_evidence_matches_counts(self, medium_kg, rng):
        srs = SimpleRandomSampling()
        state = srs.new_state()
        batch = srs.draw(medium_kg, state, units=50, rng=rng)
        labels = medium_kg.labels(batch.indices)
        srs.update(state, batch, labels)
        ev = srs.evidence(state)
        assert ev.mu_hat == pytest.approx(labels.mean())
        assert ev.n_effective == 50

    def test_evidence_without_data_raises(self):
        srs = SimpleRandomSampling()
        with pytest.raises(InsufficientSampleError):
            srs.evidence(srs.new_state())

    def test_estimator_unbiased_on_kg(self, medium_kg):
        # Mean of many SRS estimates should approach the true accuracy.
        srs = SimpleRandomSampling()
        estimates = []
        for seed in range(200):
            rng = np.random.default_rng(seed)
            state = srs.new_state()
            batch = srs.draw(medium_kg, state, units=100, rng=rng)
            srs.update(state, batch, medium_kg.labels(batch.indices))
            estimates.append(srs.evidence(state).mu_hat)
        assert np.mean(estimates) == pytest.approx(medium_kg.accuracy, abs=0.01)

    def test_cost_tracks_distinct_entities(self, medium_kg, rng):
        from repro.annotation.cost import DEFAULT_COST_MODEL

        srs = SimpleRandomSampling()
        state = srs.new_state()
        batch = srs.draw(medium_kg, state, units=30, rng=rng)
        srs.update(state, batch, medium_kg.labels(batch.indices))
        cost = state.cost(DEFAULT_COST_MODEL)
        assert cost.num_triples == 30
        assert cost.num_entities == len(set(batch.subjects.tolist()))
