"""Unit tests for the paper dataset profiles (Table 1 fidelity)."""

from __future__ import annotations

import pytest

from repro.exceptions import ValidationError
from repro.kg.datasets import (
    PROFILES,
    SYN100M_ACCURACIES,
    load_dataset,
    load_dbpedia,
    load_factbench,
    load_nell,
    load_syn100m,
    load_yago,
)

EXPECTED = {
    "YAGO": (1_386, 822, 0.99),
    "NELL": (1_860, 817, 0.91),
    "DBPEDIA": (9_344, 2_936, 0.85),
    "FACTBENCH": (2_800, 1_157, 0.54),
}


class TestProfiles:
    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_profile_constants(self, name):
        facts, clusters, accuracy = EXPECTED[name]
        profile = PROFILES[name]
        assert profile.num_facts == facts
        assert profile.num_clusters == clusters
        assert profile.accuracy == accuracy

    def test_avg_cluster_sizes_match_table1(self):
        # Table 1 reports 1.69 / 2.28 / 3.18 / 2.42.
        assert PROFILES["YAGO"].avg_cluster_size == pytest.approx(1.69, abs=0.01)
        assert PROFILES["NELL"].avg_cluster_size == pytest.approx(2.28, abs=0.01)
        assert PROFILES["DBPEDIA"].avg_cluster_size == pytest.approx(3.18, abs=0.01)
        assert PROFILES["FACTBENCH"].avg_cluster_size == pytest.approx(2.42, abs=0.01)


class TestLoaders:
    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_load_dataset_matches_profile(self, name):
        facts, clusters, accuracy = EXPECTED[name]
        kg = load_dataset(name, seed=0)
        assert kg.num_triples == facts
        assert kg.num_clusters == clusters
        assert kg.accuracy == pytest.approx(accuracy, abs=0.001)

    def test_case_insensitive(self):
        assert load_dataset("yago", seed=0).num_triples == 1_386

    def test_unknown_dataset(self):
        with pytest.raises(ValidationError, match="unknown dataset"):
            load_dataset("WIKIDATA")

    def test_named_loaders_agree(self):
        for loader, name in (
            (load_yago, "YAGO"),
            (load_nell, "NELL"),
            (load_dbpedia, "DBPEDIA"),
            (load_factbench, "FACTBENCH"),
        ):
            kg = loader(seed=3)
            assert kg.num_triples == EXPECTED[name][0]

    def test_same_seed_same_kg(self):
        a = load_nell(seed=42)
        b = load_nell(seed=42)
        assert a.triples == b.triples


class TestSyn100M:
    def test_paper_accuracies(self):
        assert SYN100M_ACCURACIES == (0.9, 0.5, 0.1)

    def test_structure(self):
        kg = load_syn100m(accuracy=0.9, seed=0)
        assert kg.num_triples == 101_415_011
        assert kg.num_clusters == 5_000_000
        assert kg.avg_cluster_size == pytest.approx(20.28, abs=0.01)
        assert kg.accuracy == 0.9

    def test_rejects_bad_accuracy(self):
        with pytest.raises(ValidationError):
            load_syn100m(accuracy=1.2)
