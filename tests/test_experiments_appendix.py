"""Tests for the online-appendix sampling-strategy experiment and CSV export."""

from __future__ import annotations

import csv

from repro.experiments.appendix_sampling import run_appendix_sampling
from repro.experiments.config import ExperimentSettings
from repro.experiments.figure2 import run_figure2

SETTINGS = ExperimentSettings(repetitions=3, datasets=("YAGO",))


class TestAppendixSampling:
    def test_all_strategies_present(self):
        report = run_appendix_sampling(SETTINGS)
        assert [row["sampling"] for row in report.rows] == [
            "SRS",
            "TWCS",
            "WCS",
            "STRAT",
        ]

    def test_cells_formatted(self):
        report = run_appendix_sampling(SETTINGS)
        for row in report.rows:
            assert "±" in str(row["YAGO triples"])
            assert "±" in str(row["YAGO cost"])

    def test_registered_in_cli(self):
        from repro.experiments import EXPERIMENTS

        assert "appendix-sampling" in EXPERIMENTS


class TestCsvExport:
    def test_round_trip(self, tmp_path):
        report = run_figure2(SETTINGS)
        path = report.to_csv(tmp_path / "figure2.csv")
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == list(report.headers)
        assert len(rows) == len(report.rows) + 1

    def test_creates_parents(self, tmp_path):
        report = run_figure2(SETTINGS)
        path = report.to_csv(tmp_path / "nested" / "out.csv")
        assert path.exists()
