"""Unit tests for the annotation budget planner."""

from __future__ import annotations

import pytest

from repro.evaluation.framework import EvaluationConfig, KGAccuracyEvaluator
from repro.evaluation.planner import SampleSizePlanner
from repro.evaluation.runner import run_study
from repro.exceptions import ConvergenceError
from repro.intervals.ahpd import AdaptiveHPD
from repro.intervals.wald import WaldInterval
from repro.intervals.wilson import WilsonInterval


class TestExpectedMoE:
    def test_decreases_with_n(self):
        planner = SampleSizePlanner()
        wilson = WilsonInterval()
        m30 = planner.expected_moe(wilson, 0.9, 30)
        m120 = planner.expected_moe(wilson, 0.9, 120)
        assert m120 < m30

    def test_symmetric_in_mu(self):
        planner = SampleSizePlanner()
        wilson = WilsonInterval()
        assert planner.expected_moe(wilson, 0.9, 50) == pytest.approx(
            planner.expected_moe(wilson, 0.1, 50)
        )

    def test_largest_at_half(self):
        planner = SampleSizePlanner()
        wilson = WilsonInterval()
        assert planner.expected_moe(wilson, 0.5, 50) > planner.expected_moe(
            wilson, 0.9, 50
        )


class TestPlan:
    def test_threshold_met_at_plan(self):
        planner = SampleSizePlanner()
        plan = planner.plan(AdaptiveHPD(), mu=0.9)
        assert plan.expected_moe <= planner.config.epsilon
        # ... and not met one annotation earlier (unless at the floor).
        if plan.n_triples > planner.config.min_triples:
            assert (
                planner.expected_moe(AdaptiveHPD(), 0.9, plan.n_triples - 1)
                > planner.config.epsilon
            )

    def test_plan_tracks_measured_effort(self, nell_kg):
        # The planner's prediction should upper-bound and roughly match
        # the realised mean effort (optional stopping halts earlier).
        planner = SampleSizePlanner()
        plan = planner.plan(AdaptiveHPD(), mu=nell_kg.accuracy)
        from repro.sampling.srs import SimpleRandomSampling

        study = run_study(
            KGAccuracyEvaluator(nell_kg, SimpleRandomSampling(), AdaptiveHPD()),
            repetitions=40,
            seed=0,
        )
        measured = study.triples.mean()
        assert measured <= plan.n_triples * 1.10
        assert plan.n_triples <= measured * 2.0

    def test_symmetric_accuracy_needs_more(self):
        planner = SampleSizePlanner()
        skewed = planner.plan(AdaptiveHPD(), mu=0.9)
        central = planner.plan(AdaptiveHPD(), mu=0.5)
        assert central.n_triples > skewed.n_triples

    def test_ahpd_plans_at_most_wilson(self):
        # aHPD strictly wins in the skewed regions; at quasi-symmetric
        # accuracies it matches Wilson up to the approximation between
        # the Wilson CI and the Uniform-prior ET CrI (paper Sec. 6.3) —
        # allow an off-by-a-couple tie there.
        planner = SampleSizePlanner()
        for mu in (0.9, 0.99):
            ahpd = planner.plan(AdaptiveHPD(), mu=mu)
            wilson = planner.plan(WilsonInterval(), mu=mu)
            assert ahpd.n_triples <= wilson.n_triples
        ahpd = planner.plan(AdaptiveHPD(), mu=0.54)
        wilson = planner.plan(WilsonInterval(), mu=0.54)
        assert ahpd.n_triples <= wilson.n_triples + 3

    def test_cost_uses_entities_per_triple(self):
        srs_like = SampleSizePlanner(entities_per_triple=1.0)
        twcs_like = SampleSizePlanner(entities_per_triple=0.4)
        plan_srs = srs_like.plan(WilsonInterval(), mu=0.9)
        plan_twcs = twcs_like.plan(WilsonInterval(), mu=0.9)
        assert plan_twcs.cost_hours < plan_srs.cost_hours

    def test_unreachable_raises(self):
        planner = SampleSizePlanner(config=EvaluationConfig(epsilon=0.0001))
        with pytest.raises(ConvergenceError):
            planner.plan(WilsonInterval(), mu=0.5, max_n=500)

    def test_compare_returns_all(self):
        planner = SampleSizePlanner()
        plans = planner.compare(
            {"wald": WaldInterval(), "wilson": WilsonInterval()}, mu=0.85
        )
        assert set(plans) == {"wald", "wilson"}
        assert all(p.n_triples >= 30 for p in plans.values())
