"""Chaos-backend tests: seeded fault injection proves the failure path.

The property pinned down here is the PR's acceptance criterion: for
*any* seeded fault schedule, a run under the chaos backend plus a
retry policy produces bit-identical results — and an identical result
cache — to a fault-free serial run.  Reproducibility extends through
the failure path.
"""

from __future__ import annotations

import pickle
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings as hyp_settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.experiments.config import ExperimentSettings
from repro.runtime import (
    ChaosBackend,
    ParallelExecutor,
    ProcessPoolBackend,
    RetryPolicy,
    SerialBackend,
    SpoolBackend,
    StudyCell,
    StudyPlan,
    make_backend,
    unit_token,
)
from repro.runtime.backends.chaos import (
    _FAULT_KINDS,
    resolve_chaos_rate,
    resolve_chaos_seed,
)


def study_cell(method: str = "Wilson", seed_stream=(5,)) -> StudyCell:
    return StudyCell(
        key=("NELL", "SRS", method),
        label=f"NELL/SRS/{method}",
        method=method,
        dataset="NELL",
        strategy="SRS",
        seed_stream=seed_stream,
    )


def small_plan(repetitions: int = 3) -> StudyPlan:
    settings = ExperimentSettings(repetitions=repetitions, seed=0)
    return StudyPlan(
        settings=settings,
        cells=(study_cell("Wilson"), study_cell("aHPD")),
        name="chaos-test",
    )


def assert_studies_equal(a, b) -> None:
    assert np.array_equal(a.triples, b.triples)
    assert np.array_equal(a.estimates, b.estimates)
    assert np.array_equal(a.cost_hours, b.cost_hours)
    assert np.array_equal(a.converged, b.converged)


def cache_tokens(root) -> list[str]:
    """The token file names of a store — its content-address state."""
    return sorted(path.name for path in Path(root).rglob("*.pkl"))


class TestSpecParsing:
    def test_bare_chaos_wraps_serial(self):
        backend = make_backend("chaos")
        assert isinstance(backend, ChaosBackend)
        assert isinstance(backend.inner, SerialBackend)
        assert backend.name == "chaos:serial"

    def test_nested_spec_reaches_the_inner_backend(self, tmp_path):
        backend = make_backend("chaos:process:3")
        assert isinstance(backend.inner, ProcessPoolBackend)
        assert backend.inner.workers == 3
        spooled = make_backend(f"chaos:spool:{tmp_path / 'q'}")
        assert isinstance(spooled.inner, SpoolBackend)
        assert spooled.name == "chaos:spool"

    def test_seed_and_rate_resolve_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS_SEED", "99")
        monkeypatch.setenv("REPRO_CHAOS_RATE", "0.5")
        backend = ChaosBackend()
        assert backend.seed == 99
        assert backend.rate == 0.5
        # Explicit arguments beat the environment.
        pinned = ChaosBackend(seed=1, rate=0.1)
        assert (pinned.seed, pinned.rate) == (1, 0.1)

    def test_env_defaults_and_validation(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHAOS_SEED", raising=False)
        monkeypatch.delenv("REPRO_CHAOS_RATE", raising=False)
        assert resolve_chaos_seed(None) == 0
        assert resolve_chaos_rate(None) == 0.25
        monkeypatch.setenv("REPRO_CHAOS_SEED", "entropy")
        with pytest.raises(ValidationError, match="REPRO_CHAOS_SEED"):
            resolve_chaos_seed(None)
        monkeypatch.setenv("REPRO_CHAOS_RATE", "lots")
        with pytest.raises(ValidationError, match="REPRO_CHAOS_RATE"):
            resolve_chaos_rate(None)
        with pytest.raises(ValidationError, match="rate"):
            resolve_chaos_rate(1.5)


class TestFaultSchedule:
    def test_schedule_is_a_pure_function_of_seed_and_token(self):
        a = ChaosBackend(SerialBackend(), seed=7, rate=0.5)
        b = ChaosBackend(SerialBackend(), seed=7, rate=0.5)
        tokens = [f"token-{i}" for i in range(64)]
        assert [a._fault_for(t) for t in tokens] == [b._fault_for(t) for t in tokens]
        shifted = ChaosBackend(SerialBackend(), seed=8, rate=0.5)
        assert [a._fault_for(t) for t in tokens] != [
            shifted._fault_for(t) for t in tokens
        ]

    def test_rate_one_faults_every_unit_with_all_kinds(self):
        backend = ChaosBackend(SerialBackend(), seed=3, rate=1.0)
        kinds = {backend._fault_for(f"token-{i}") for i in range(256)}
        assert None not in kinds
        assert kinds == set(_FAULT_KINDS)

    def test_rate_zero_injects_nothing(self):
        plan = small_plan()
        outcome = ParallelExecutor(
            backend=ChaosBackend(SerialBackend(), seed=1, rate=0.0),
            max_retries=0,
            on_error="raise",
        ).run(plan)
        assert outcome.retries == 0
        assert outcome.failures == ()
        assert outcome.backend == "chaos:serial"

    def test_retry_count_matches_the_predicted_schedule(self):
        # At rate=1.0 every unit is faulted exactly once; the faults
        # that fail ("before"/"after"/"drop", not "delay") each cost
        # exactly one retry — predictable from the schedule alone.
        plan = small_plan()
        backend = ChaosBackend(SerialBackend(), seed=11, rate=1.0)
        expected = sum(
            1
            for cell in plan.cells
            if backend._fault_for(unit_token(cell, plan.settings)) != "delay"
        )
        outcome = ParallelExecutor(
            backend=backend,
            retry_policy=RetryPolicy(max_retries=2, backoff_base=0.0),
            on_error="raise",
        ).run(plan)
        assert outcome.retries == expected
        assert outcome.failures == ()

    def test_unretried_chaos_fault_aborts_with_chaosfault_history(self):
        from repro.runtime import PlanExecutionError

        plan = small_plan()
        backend = ChaosBackend(SerialBackend(), seed=1, rate=1.0)
        failing = [
            cell
            for cell in plan.cells
            if backend._fault_for(unit_token(cell, plan.settings)) != "delay"
        ]
        assert failing  # seed 1 chosen so at least one unit fails
        with pytest.raises(PlanExecutionError, match="injected") as info:
            ParallelExecutor(
                backend=backend, max_retries=0, on_error="raise"
            ).run(plan)
        assert any("ChaosFault" in f.error for f in info.value.failures)

    def test_identical_seeds_reproduce_the_run_exactly(self):
        plan = small_plan()
        first = ParallelExecutor(
            backend=ChaosBackend(SerialBackend(), seed=5, rate=0.8),
            retry_policy=RetryPolicy(max_retries=3, backoff_base=0.0),
        ).run(plan)
        second = ParallelExecutor(
            backend=ChaosBackend(SerialBackend(), seed=5, rate=0.8),
            retry_policy=RetryPolicy(max_retries=3, backoff_base=0.0),
        ).run(plan)
        assert first.retries == second.retries
        for key in first.results:
            assert_studies_equal(first.results[key], second.results[key])


class TestBitIdentityUnderChaos:
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        rate=st.floats(min_value=0.0, max_value=0.6),
        chunk=st.sampled_from([None, 2]),
    )
    @hyp_settings(max_examples=8, deadline=None)
    def test_fault_schedules_preserve_results_and_cache_state(
        self, seed, rate, chunk
    ):
        # THE acceptance property: any seeded fault schedule, with
        # retries, yields byte-identical results and final cache state
        # to a fault-free serial run — sharded or not.
        plan = small_plan()
        with tempfile.TemporaryDirectory() as clean_dir, tempfile.TemporaryDirectory() as chaos_dir:
            reference = ParallelExecutor(
                workers=1,
                backend=SerialBackend(),
                store=clean_dir,
                chunk_size=chunk,
            ).run(plan)
            chaotic = ParallelExecutor(
                backend=ChaosBackend(SerialBackend(), seed=seed, rate=rate),
                store=chaos_dir,
                chunk_size=chunk,
                retry_policy=RetryPolicy(max_retries=4, backoff_base=0.0),
                on_error="raise",
            ).run(plan)
            assert chaotic.failures == ()
            for key in reference.results:
                assert_studies_equal(reference.results[key], chaotic.results[key])
            # The cache converged to the same content-addressed state:
            # same tokens present, same values stored under each.
            assert cache_tokens(clean_dir) == cache_tokens(chaos_dir)
            for path in Path(clean_dir).rglob("*.pkl"):
                twin = Path(chaos_dir) / path.relative_to(clean_dir)
                a = pickle.loads(path.read_bytes())
                b = pickle.loads(twin.read_bytes())
                assert_studies_equal(a["value"], b["value"])

    def test_chaos_around_the_process_pool(self):
        # The spec string CI runs with: chaos:process, retries on.
        plan = small_plan()
        reference = ParallelExecutor(workers=1, backend=SerialBackend()).run(plan)
        chaotic = ParallelExecutor(
            workers=2,
            backend=ChaosBackend("process:2", seed=4, rate=0.5),
            retry_policy=RetryPolicy(max_retries=3, backoff_base=0.0),
        ).run(plan)
        assert chaotic.backend == "chaos:process"
        for key in reference.results:
            assert_studies_equal(reference.results[key], chaotic.results[key])
