"""Unit tests for KG serialisation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.kg.graph import KnowledgeGraph
from repro.kg.io import load_kg, save_kg
from repro.kg.triple import Triple


class TestRoundTrip:
    def test_save_load_identity(self, tiny_kg, tmp_path):
        path = tmp_path / "kg.tsv"
        written = save_kg(tiny_kg, path)
        assert written == tiny_kg.num_triples
        loaded = load_kg(path)
        assert loaded.triples == tiny_kg.triples
        assert np.array_equal(loaded.all_labels, tiny_kg.all_labels)
        assert loaded.accuracy == tiny_kg.accuracy

    def test_creates_parent_dirs(self, tiny_kg, tmp_path):
        path = tmp_path / "nested" / "dir" / "kg.tsv"
        save_kg(tiny_kg, path)
        assert path.exists()

    def test_header_comment_present(self, tiny_kg, tmp_path):
        path = tmp_path / "kg.tsv"
        save_kg(tiny_kg, path)
        first = path.read_text().splitlines()[0]
        assert first.startswith("#")


class TestLoadValidation:
    def test_rejects_wrong_field_count(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("a\tb\tc\n")
        with pytest.raises(ValidationError, match="4 tab-separated"):
            load_kg(path)

    def test_rejects_bad_label(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("a\tb\tc\tmaybe\n")
        with pytest.raises(ValidationError, match="label"):
            load_kg(path)

    def test_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.tsv"
        path.write_text("# only a comment\n")
        with pytest.raises(ValidationError, match="no facts"):
            load_kg(path)

    def test_skips_blank_lines(self, tmp_path):
        path = tmp_path / "kg.tsv"
        path.write_text("e:a\tp\tv:x\t1\n\ne:b\tp\tv:y\t0\n")
        kg = load_kg(path)
        assert kg.num_triples == 2
        assert kg.accuracy == 0.5

    def test_error_includes_line_number(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("e:a\tp\tv:x\t1\nbroken line\n")
        with pytest.raises(ValidationError, match=":2"):
            load_kg(path)


class TestSaveValidation:
    def test_rejects_tab_in_field(self, tmp_path):
        kg = KnowledgeGraph([Triple("with\ttab", "p", "o")], [True])
        with pytest.raises(ValidationError, match="tab"):
            save_kg(kg, tmp_path / "kg.tsv")


class TestLargerRoundTrip:
    def test_profiled_kg_round_trip(self, tmp_path, medium_kg):
        path = tmp_path / "medium.tsv"
        save_kg(medium_kg, path)
        loaded = load_kg(path)
        assert loaded.num_triples == medium_kg.num_triples
        assert loaded.num_clusters == medium_kg.num_clusters
        assert loaded.accuracy == pytest.approx(medium_kg.accuracy)
