"""Unit tests for cluster-bootstrap variance estimation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.estimators.bootstrap import bootstrap_cluster_variance
from repro.estimators.cluster import twcs_point_estimate
from repro.exceptions import InsufficientSampleError, ValidationError


class TestBootstrapVariance:
    def test_matches_closed_form_for_mean(self, rng):
        means = rng.random(60)
        _, closed_form = twcs_point_estimate(means)
        boot = bootstrap_cluster_variance(means, replicates=6_000, rng=0)
        assert boot == pytest.approx(closed_form, rel=0.10)

    def test_rescale_flag(self):
        means = np.array([0.2, 0.4, 0.6, 0.8])
        scaled = bootstrap_cluster_variance(means, replicates=4_000, rng=1, rescale=True)
        raw = bootstrap_cluster_variance(means, replicates=4_000, rng=1, rescale=False)
        assert scaled == pytest.approx(raw * 4 / 3)

    def test_custom_estimator(self, rng):
        means = rng.random(40)
        var_median = bootstrap_cluster_variance(
            means, replicates=800, rng=2, estimator=np.median
        )
        assert var_median > 0.0

    def test_deterministic_under_seed(self):
        means = np.linspace(0.1, 0.9, 20)
        a = bootstrap_cluster_variance(means, replicates=500, rng=7)
        b = bootstrap_cluster_variance(means, replicates=500, rng=7)
        assert a == b

    def test_identical_means_zero_variance(self):
        assert bootstrap_cluster_variance([0.5] * 10, replicates=200, rng=0) == 0.0

    def test_requires_two_clusters(self):
        with pytest.raises(InsufficientSampleError):
            bootstrap_cluster_variance([0.5], replicates=100)

    def test_rejects_2d(self):
        with pytest.raises(ValidationError):
            bootstrap_cluster_variance(np.ones((2, 2)), replicates=100)

    def test_variance_shrinks_with_clusters(self, rng):
        few = bootstrap_cluster_variance(rng.random(10), replicates=2_000, rng=3)
        many = bootstrap_cluster_variance(rng.random(160), replicates=2_000, rng=3)
        assert many < few
