"""Solve-table tests: bit-identity, persistence, and routing.

The small-n solve table (:mod:`repro.intervals.table`) is pure
memoisation: for every method, alpha, and eligible batch, the served
bounds must be *bitwise* equal to a direct ``compute_batch`` — and to a
pooled :class:`~repro.runtime.solvebatch.SolveBroker` flush, which is
the other consult point.  These tests pin that three-way identity for
all nine methods, the mmap sidecar round-trip (including a genuinely
fresh process), and the table's strict fall-through for anything it
cannot serve exactly.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
from pathlib import Path

import pytest

import repro
from repro.estimators.base import Evidence
from repro.intervals import (
    AdaptiveHPD,
    AgrestiCoullInterval,
    ArcsineInterval,
    ClopperPearsonInterval,
    ETCredibleInterval,
    HPDCredibleInterval,
    Interval,
    IntervalMethod,
    LogitInterval,
    WaldInterval,
    WilsonInterval,
)
from repro.intervals.base import use_solve_pool, use_solve_table
from repro.intervals.table import (
    DEFAULT_TABLE_CAP,
    SolveTable,
    shared_table,
    sidecar_summary,
)
from repro.runtime.solvebatch import SolveBroker
from repro.runtime.store import ResultStore

ALL_METHODS = (
    WaldInterval, WilsonInterval, AgrestiCoullInterval,
    ClopperPearsonInterval, ArcsineInterval, LogitInterval,
    ETCredibleInterval, HPDCredibleInterval, AdaptiveHPD,
)


def batches_equal(a, b) -> bool:
    return (
        a.lower.tobytes() == b.lower.tobytes()
        and a.upper.tobytes() == b.upper.tobytes()
        and a.alpha == b.alpha
        and a.method == b.method
        and a.labels == b.labels
    )


class TestBitIdentity:
    @pytest.mark.parametrize("method_cls", ALL_METHODS)
    @pytest.mark.parametrize("alpha", [0.05, 0.2])
    def test_served_equals_direct_for_every_tau(self, tmp_path, method_cls, alpha):
        method = method_cls()
        table = SolveTable(tmp_path, cap=64)
        for n in (1, 2, 17, 64):
            evidences = [Evidence.from_counts(tau, n) for tau in range(n + 1)]
            direct = method.compute_batch(evidences, alpha)
            served = table.serve(method, evidences, alpha)
            assert served is not None
            assert batches_equal(direct, served)

    def test_mixed_n_batches_and_repeat_rows(self, tmp_path):
        method = HPDCredibleInterval()
        table = SolveTable(tmp_path, cap=64)
        evidences = [
            Evidence.from_counts(tau, n)
            for tau, n in [(3, 7), (0, 1), (7, 7), (3, 7), (20, 41), (41, 41)]
        ]
        direct = method.compute_batch(evidences, 0.1)
        served = table.serve(method, evidences, 0.1)
        assert served is not None and batches_equal(direct, served)

    def test_solve_batch_routes_through_ambient_table(self, tmp_path):
        method = AdaptiveHPD()
        evidences = [Evidence.from_counts(tau, 12) for tau in range(13)]
        direct = method.compute_batch(evidences, 0.05)
        table = SolveTable(tmp_path, cap=64)
        with use_solve_table(table):
            served = method.solve_batch(evidences, 0.05)
        assert batches_equal(direct, served)
        assert table.stats()["hits"] == 1
        assert table.stats()["rows_served"] == 13

    def test_pooled_broker_flush_serves_from_the_table(self, tmp_path):
        """Three-way identity: direct == table-served == broker flush."""
        method = WilsonInterval()
        evidences = [Evidence.from_counts(tau, 20) for tau in range(21)]
        direct = method.compute_batch(evidences, 0.05)
        table = SolveTable(tmp_path, cap=64)
        broker = SolveBroker(window=0.05, max_batch=8)
        results: dict[int, object] = {}

        def solve(slot: int) -> None:
            channel = broker.channel(None)
            with channel, use_solve_pool(channel), use_solve_table(table):
                results[slot] = method.solve_batch(evidences, 0.05)

        threads = [threading.Thread(target=solve, args=(i,)) for i in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        broker.close()
        for slot in range(3):
            assert batches_equal(direct, results[slot])
        # The cold solves went through the broker (the table could not
        # serve without building), and the flush built the table once —
        # after which warm solve_batch calls bypass the broker entirely.
        stats = table.stats()
        assert stats["builds"] == 1
        assert stats["hits"] >= 1
        with use_solve_pool(broker.channel(None)), use_solve_table(table):
            warm = method.solve_batch(evidences, 0.05)
        assert batches_equal(direct, warm)
        assert broker.rows_solved <= 3 * len(evidences)


class TestPersistence:
    def test_sidecar_round_trip_in_fresh_table(self, tmp_path):
        method = ETCredibleInterval()
        evidences = [Evidence.from_counts(tau, 9) for tau in range(10)]
        direct = method.compute_batch(evidences, 0.05)
        SolveTable(tmp_path, cap=16).serve(method, evidences, 0.05)
        fresh = SolveTable(tmp_path, cap=16)
        served = fresh.serve(method, evidences, 0.05, build=False)
        assert served is not None and batches_equal(direct, served)
        assert fresh.stats()["builds"] == 0
        assert fresh.stats()["sidecar_loads"] == 1

    def test_sidecar_round_trip_in_fresh_process(self, tmp_path):
        method = AdaptiveHPD()  # the label-carrying selector
        evidences = [Evidence.from_counts(tau, 6) for tau in range(7)]
        direct = method.compute_batch(evidences, 0.05)
        SolveTable(tmp_path, cap=16).serve(method, evidences, 0.05)
        script = (
            "import numpy as np\n"
            "from repro.estimators.base import Evidence\n"
            "from repro.intervals import AdaptiveHPD\n"
            "from repro.intervals.table import SolveTable\n"
            f"table = SolveTable({str(tmp_path)!r}, cap=16)\n"
            "evs = [Evidence.from_counts(t, 6) for t in range(7)]\n"
            "served = table.serve(AdaptiveHPD(), evs, 0.05, build=False)\n"
            "assert served is not None, 'sidecar not served'\n"
            "assert table.stats()['builds'] == 0\n"
            "print(served.lower.tobytes().hex())\n"
            "print(served.upper.tobytes().hex())\n"
            "print('|'.join(served.labels))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(repro.__file__).parents[1]) + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        lower_hex, upper_hex, labels = proc.stdout.strip().splitlines()
        assert lower_hex == direct.lower.tobytes().hex()
        assert upper_hex == direct.upper.tobytes().hex()
        assert tuple(labels.split("|")) == direct.labels

    def test_corrupt_sidecar_is_rebuilt_not_served(self, tmp_path):
        method = WilsonInterval()
        evidences = [Evidence.from_counts(tau, 5) for tau in range(6)]
        direct = method.compute_batch(evidences, 0.05)
        table = SolveTable(tmp_path, cap=8)
        table.serve(method, evidences, 0.05)
        sidecar_dir = tmp_path / "solvetable"
        for path in sidecar_dir.glob("*.npy"):
            path.write_bytes(b"not an npy file")
        fresh = SolveTable(tmp_path, cap=8)
        served = fresh.serve(method, evidences, 0.05)
        assert served is not None and batches_equal(direct, served)
        assert fresh.stats()["builds"] == 1  # rebuilt over the bad file

    def test_cache_entries_coexist_before_and_after_tables(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save("a" * 40, {"value": 1, "label": "before", "seconds": 0.0})
        before = store.stats()
        method = HPDCredibleInterval()
        evidences = [Evidence.from_counts(2, 4)]
        SolveTable(tmp_path, cap=8).serve(method, evidences, 0.05)
        assert sidecar_summary(tmp_path)["entries"] == 1
        store.save("b" * 40, {"value": 2, "label": "after", "seconds": 0.0})
        # The store never sees the sidecars: entry counts and bytes
        # move only by the .pkl entry written after the table.
        after = store.stats()
        assert after["entries"] == before["entries"] + 1
        assert store.load("a" * 40)["value"] == 1
        assert store.load("b" * 40)["value"] == 2
        # And the table still serves beside the new entries.
        fresh = SolveTable(tmp_path, cap=8)
        assert fresh.serve(method, evidences, 0.05, build=False) is not None


class TestEligibility:
    def test_non_integer_counts_fall_through(self, tmp_path):
        table = SolveTable(tmp_path, cap=64)
        stratified = Evidence(
            mu_hat=0.5, variance=0.01, n_effective=12.5,
            tau_effective=6.25, n_annotated=12,
        )
        assert table.serve(WilsonInterval(), [stratified], 0.05) is None
        assert table.stats()["ineligible"] == 1

    def test_over_cap_and_disabled_fall_through(self, tmp_path):
        evidences = [Evidence.from_counts(3, 10)]
        assert SolveTable(tmp_path, cap=4).serve(
            WilsonInterval(), evidences, 0.05
        ) is None
        assert SolveTable(tmp_path, cap=0).serve(
            WilsonInterval(), evidences, 0.05
        ) is None

    def test_unencodable_method_falls_through(self, tmp_path):
        class Custom(IntervalMethod):
            name = "custom"

            def compute(self, evidence, alpha):
                return Interval(lower=0.0, upper=1.0, alpha=alpha)

        table = SolveTable(tmp_path, cap=64)
        assert table.serve(Custom(), [Evidence.from_counts(1, 2)], 0.05) is None
        assert table.stats()["ineligible"] == 1

    def test_mixed_eligibility_is_all_or_nothing(self, tmp_path):
        table = SolveTable(tmp_path, cap=64)
        evidences = [
            Evidence.from_counts(1, 2),
            Evidence(
                mu_hat=0.4, variance=0.02, n_effective=9.5,
                tau_effective=3.8, n_annotated=9,
            ),
        ]
        assert table.serve(WilsonInterval(), evidences, 0.05) is None
        assert table.stats()["builds"] == 0

    def test_empty_batch_falls_through(self, tmp_path):
        assert SolveTable(tmp_path, cap=8).serve(WilsonInterval(), [], 0.05) is None


class TestRegistry:
    def test_shared_table_is_per_root_and_cap(self, tmp_path):
        a = shared_table(tmp_path, 32)
        assert shared_table(tmp_path, 32) is a
        assert shared_table(tmp_path, 64) is not a
        assert shared_table(None, 32) is not a
        assert a.cap == 32 and a.root == Path(tmp_path)

    def test_default_cap_matches_settings_default(self, monkeypatch):
        from repro.runtime.settings import resolve_solve_table

        monkeypatch.delenv("REPRO_SOLVE_TABLE", raising=False)
        assert DEFAULT_TABLE_CAP == 2048
        assert resolve_solve_table(None) == DEFAULT_TABLE_CAP
