"""Unit tests for KG descriptive statistics."""

from __future__ import annotations

import pytest

from repro.kg.stats import describe_kg


class TestDescribeKG:
    def test_tiny_kg(self, tiny_kg):
        stats = describe_kg(tiny_kg, name="tiny")
        assert stats.name == "tiny"
        assert stats.num_facts == 6
        assert stats.num_clusters == 3
        assert stats.avg_cluster_size == pytest.approx(2.0)
        assert stats.accuracy == pytest.approx(4 / 6)
        assert stats.max_cluster_size == 3
        assert stats.min_cluster_size == 1

    def test_as_row_rounding(self, tiny_kg):
        row = describe_kg(tiny_kg, name="tiny").as_row()
        assert row["avg_cluster_size"] == 2.0
        assert row["accuracy"] == 0.67
        assert row["dataset"] == "tiny"

    def test_synthetic_kg(self, small_synthetic):
        stats = describe_kg(small_synthetic, name="syn")
        assert stats.num_facts == 50_000
        assert stats.num_clusters == 2_500
        assert stats.accuracy == pytest.approx(0.9)

    def test_cluster_size_std_nonnegative(self, medium_kg):
        assert describe_kg(medium_kg).cluster_size_std >= 0.0
