"""Unit tests for the Monte-Carlo study harness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation.framework import KGAccuracyEvaluator
from repro.evaluation.runner import run_study
from repro.exceptions import ValidationError
from repro.intervals.ahpd import AdaptiveHPD
from repro.intervals.wilson import WilsonInterval
from repro.sampling.srs import SimpleRandomSampling


@pytest.fixture(scope="module")
def nell_study(request):
    from repro.kg.datasets import load_dataset

    kg = load_dataset("NELL", seed=42)
    evaluator = KGAccuracyEvaluator(kg, SimpleRandomSampling(), AdaptiveHPD())
    return run_study(evaluator, repetitions=40, seed=0, label="nell/ahpd")


class TestRunStudy:
    def test_arrays_sized(self, nell_study):
        assert nell_study.repetitions == 40
        assert nell_study.triples.shape == (40,)
        assert nell_study.cost_hours.shape == (40,)
        assert nell_study.estimates.shape == (40,)

    def test_all_converged(self, nell_study):
        assert nell_study.convergence_rate == 1.0

    def test_label(self, nell_study):
        assert nell_study.label == "nell/ahpd"

    def test_summaries(self, nell_study):
        assert nell_study.triples_summary.mean == pytest.approx(
            nell_study.triples.mean()
        )
        assert nell_study.cost_summary.count == 40

    def test_estimate_bias_small(self, nell_study):
        assert abs(nell_study.estimate_bias(0.91)) < 0.03

    def test_deterministic(self):
        from repro.kg.datasets import load_dataset

        kg = load_dataset("NELL", seed=42)
        evaluator = KGAccuracyEvaluator(kg, SimpleRandomSampling(), WilsonInterval())
        a = run_study(evaluator, repetitions=10, seed=7)
        b = run_study(evaluator, repetitions=10, seed=7)
        assert np.array_equal(a.triples, b.triples)
        assert np.array_equal(a.cost_hours, b.cost_hours)

    def test_seed_changes_outcomes(self):
        from repro.kg.datasets import load_dataset

        kg = load_dataset("NELL", seed=42)
        evaluator = KGAccuracyEvaluator(kg, SimpleRandomSampling(), WilsonInterval())
        a = run_study(evaluator, repetitions=10, seed=1)
        b = run_study(evaluator, repetitions=10, seed=2)
        assert not np.array_equal(a.triples, b.triples)

    def test_default_label(self):
        from repro.kg.datasets import load_dataset

        kg = load_dataset("NELL", seed=42)
        evaluator = KGAccuracyEvaluator(kg, SimpleRandomSampling(), WilsonInterval())
        study = run_study(evaluator, repetitions=3, seed=0)
        assert study.label == "SRS/Wilson"

    def test_rejects_zero_repetitions(self):
        from repro.kg.datasets import load_dataset

        kg = load_dataset("NELL", seed=42)
        evaluator = KGAccuracyEvaluator(kg, SimpleRandomSampling(), WilsonInterval())
        with pytest.raises(ValidationError):
            run_study(evaluator, repetitions=0)

    def test_str(self, nell_study):
        text = str(nell_study)
        assert "nell/ahpd" in text
        assert "triples=" in text


class TestRepRange:
    @pytest.fixture(scope="class")
    def evaluator(self):
        from repro.kg.datasets import load_dataset

        kg = load_dataset("NELL", seed=42)
        return KGAccuracyEvaluator(kg, SimpleRandomSampling(), WilsonInterval())

    def test_windows_are_slices_of_the_full_run(self, evaluator):
        full = run_study(evaluator, repetitions=8, seed=5)
        for start, stop in ((0, 3), (3, 6), (6, 8), (2, 7)):
            window = run_study(
                evaluator, repetitions=8, seed=5, rep_range=(start, stop)
            )
            assert window.repetitions == stop - start
            assert np.array_equal(window.triples, full.triples[start:stop])
            assert np.array_equal(window.cost_hours, full.cost_hours[start:stop])
            assert np.array_equal(window.estimates, full.estimates[start:stop])
            assert np.array_equal(window.entities, full.entities[start:stop])
            assert np.array_equal(window.converged, full.converged[start:stop])

    def test_partition_concatenates_to_full(self, evaluator):
        full = run_study(evaluator, repetitions=7, seed=9)
        parts = [
            run_study(evaluator, repetitions=7, seed=9, rep_range=window)
            for window in ((0, 3), (3, 6), (6, 7))
        ]
        assert np.array_equal(
            np.concatenate([p.estimates for p in parts]), full.estimates
        )

    def test_invalid_windows_rejected(self, evaluator):
        for bad in ((3, 3), (5, 2), (0, 9), (-1, 2), "nope"):
            with pytest.raises(ValidationError):
                run_study(evaluator, repetitions=8, seed=0, rep_range=bad)
