"""Unit tests for the user-facing audit CLI (``python -m repro``)."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.kg.io import save_kg


@pytest.fixture
def kg_file(tmp_path, medium_kg):
    path = tmp_path / "kg.tsv"
    save_kg(medium_kg, path)
    return str(path)


class TestStats:
    def test_prints_statistics(self, kg_file, capsys):
        assert main(["stats", kg_file]) == 0
        out = capsys.readouterr().out
        assert "facts            : 3000" in out
        assert "gold accuracy" in out

    def test_missing_file(self, capsys):
        assert main(["stats", "/nonexistent/kg.tsv"]) == 1
        assert "error" in capsys.readouterr().err


class TestGenerate:
    def test_writes_profiled_dataset(self, tmp_path, capsys):
        out_path = tmp_path / "yago.tsv"
        assert main(["generate", "--dataset", "YAGO", "--out", str(out_path)]) == 0
        assert out_path.exists()
        assert "1386" in capsys.readouterr().out


class TestAudit:
    def test_default_audit(self, kg_file, capsys):
        assert main(["audit", kg_file, "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "estimated accuracy" in out
        assert "annotation cost" in out

    @pytest.mark.parametrize("strategy", ["srs", "twcs", "wcs", "strat"])
    def test_every_strategy(self, kg_file, strategy, capsys):
        assert main(["audit", kg_file, "--strategy", strategy, "--seed", "1"]) == 0
        assert "margin of error" in capsys.readouterr().out

    @pytest.mark.parametrize("method", ["ahpd", "wilson", "wald"])
    def test_every_method(self, kg_file, method, capsys):
        assert main(["audit", kg_file, "--method", method, "--seed", "1"]) == 0
        capsys.readouterr()

    def test_ledger_written(self, kg_file, tmp_path, capsys):
        ledger_path = tmp_path / "ledger.tsv"
        assert main(["audit", kg_file, "--ledger", str(ledger_path), "--seed", "2"]) == 0
        assert ledger_path.exists()
        assert "judgement ledger" in capsys.readouterr().out

    def test_custom_precision(self, kg_file, capsys):
        assert main(
            ["audit", kg_file, "--alpha", "0.1", "--epsilon", "0.08", "--seed", "1"]
        ) == 0
        assert "threshold 0.08" in capsys.readouterr().out


class TestPlan:
    def test_plan_output(self, capsys):
        assert main(["plan", "--mu", "0.9"]) == 0
        out = capsys.readouterr().out
        assert "aHPD" in out and "Wilson" in out and "triples" in out

    def test_twcs_style_entities(self, capsys):
        assert main(["plan", "--mu", "0.9", "--entities-per-triple", "0.4"]) == 0
        capsys.readouterr()


class TestStudy:
    def test_grid_runs_and_prints_table(self, capsys):
        assert main(
            [
                "study",
                "--datasets", "YAGO",
                "--strategies", "srs",
                "--methods", "wald,ahpd",
                "--reps", "3",
                "--quiet",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "dataset" in out and "cost_hours" in out
        assert "wald" in out and "ahpd" in out
        assert "2 cells" in out

    def test_parallel_matches_serial_and_caches(self, tmp_path, capsys):
        args = [
            "study",
            "--datasets", "YAGO",
            "--strategies", "srs,twcs",
            "--methods", "ahpd",
            "--reps", "3",
            "--quiet",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(args + ["--workers", "2"]) == 0
        first = capsys.readouterr().out
        assert main(args) == 0  # serial re-run, served from cache
        second = capsys.readouterr().out
        # identical numbers, fully cached second time
        assert first.splitlines()[:3] == second.splitlines()[:3]
        assert "2 cached" in second

    def test_unknown_strategy_errors(self, capsys):
        assert main(["study", "--strategies", "bogus", "--reps", "2"]) == 1
        assert "unknown strategy" in capsys.readouterr().err
