"""Cells for spool worker-crash tests, importable by worker subprocesses.

Lives in ``tests/`` as a plain top-level module (pytest puts this
directory on ``sys.path``), so a task pickled by the test process
unpickles inside a detached ``python -m repro worker`` subprocess as
long as that worker's ``PYTHONPATH`` includes this directory — the
import re-runs the ``register_cell_runner`` decorator there.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path

from repro.runtime import CellSpec, register_cell_runner


@dataclass(frozen=True)
class SlowCell(CellSpec):
    """Announces each execution start via a marker file, then sleeps.

    The marker lets a test know the moment a claimant began executing
    (so it can SIGKILL that claimant mid-task), and counting markers
    afterwards shows exactly how many executions the task consumed.
    """

    marker_dir: str = ""
    sleep_seconds: float = 1.0


@register_cell_runner(SlowCell)
def _run_slow(cell, settings):
    root = Path(cell.marker_dir)
    root.mkdir(parents=True, exist_ok=True)
    start = 1
    while True:
        try:
            (root / f"start-{start:03d}").touch(exist_ok=False)
            break
        except FileExistsError:
            start += 1
    time.sleep(cell.sleep_seconds)
    return ("slow-done", cell.key, settings.repetitions)


def starts_recorded(marker_dir) -> int:
    return len(list(Path(marker_dir).glob("start-*")))
