"""Unit and property tests for the lazy synthetic KG."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.kg.synthetic import SyntheticKG, draw_cluster_sizes


class TestDrawClusterSizes:
    def test_sums_exactly(self, rng):
        sizes = draw_cluster_sizes(100, 2028, rng=rng)
        assert int(sizes.sum()) == 2028
        assert sizes.size == 100

    def test_all_positive(self, rng):
        sizes = draw_cluster_sizes(500, 700, rng=rng)
        assert sizes.min() >= 1

    def test_degenerate_one_per_cluster(self, rng):
        sizes = draw_cluster_sizes(50, 50, rng=rng)
        assert np.all(sizes == 1)

    def test_rejects_too_few_triples(self, rng):
        with pytest.raises(ValidationError):
            draw_cluster_sizes(10, 5, rng=rng)

    def test_rejects_bad_dispersion(self, rng):
        with pytest.raises(ValidationError):
            draw_cluster_sizes(10, 20, rng=rng, dispersion=0.0)

    def test_deterministic_under_seed(self):
        a = draw_cluster_sizes(100, 1000, rng=5)
        b = draw_cluster_sizes(100, 1000, rng=5)
        assert np.array_equal(a, b)

    @given(
        clusters=st.integers(2, 200),
        extra=st.integers(0, 2_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_invariants_hold(self, clusters, extra):
        total = clusters + extra
        sizes = draw_cluster_sizes(clusters, total, rng=0)
        assert sizes.size == clusters
        assert sizes.min() >= 1
        assert int(sizes.sum()) == total


class TestSyntheticKG:
    def test_structure(self, small_synthetic):
        assert small_synthetic.num_triples == 50_000
        assert small_synthetic.num_clusters == 2_500
        assert small_synthetic.avg_cluster_size == pytest.approx(20.0)
        assert small_synthetic.cluster_offsets[-1] == 50_000

    def test_labels_deterministic(self, small_synthetic):
        idx = np.array([0, 1, 42, 49_999])
        a = small_synthetic.labels(idx)
        b = small_synthetic.labels(idx)
        assert np.array_equal(a, b)

    def test_labels_depend_on_seed(self):
        kg_a = SyntheticKG(10_000, 500, accuracy=0.5, seed=1)
        kg_b = SyntheticKG(10_000, 500, accuracy=0.5, seed=2)
        idx = np.arange(10_000)
        assert not np.array_equal(kg_a.labels(idx), kg_b.labels(idx))

    def test_label_rate_matches_accuracy(self, small_synthetic):
        idx = np.arange(small_synthetic.num_triples)
        rate = float(small_synthetic.labels(idx).mean())
        assert rate == pytest.approx(0.9, abs=0.01)

    def test_realized_accuracy_helper(self, small_synthetic):
        assert small_synthetic.realized_accuracy() == pytest.approx(0.9, abs=0.02)

    @pytest.mark.parametrize("mu", [0.0, 1.0])
    def test_degenerate_rates(self, mu):
        kg = SyntheticKG(1_000, 100, accuracy=mu, seed=0)
        labels = kg.labels(np.arange(1_000))
        assert labels.mean() == mu

    def test_subjects_consistent_with_offsets(self, small_synthetic):
        rng = np.random.default_rng(0)
        idx = rng.integers(0, small_synthetic.num_triples, size=200)
        subs = small_synthetic.subjects(idx)
        offsets = small_synthetic.cluster_offsets
        for i, s in zip(idx, subs):
            assert offsets[s] <= i < offsets[s + 1]

    def test_rejects_out_of_range(self, small_synthetic):
        with pytest.raises(ValidationError):
            small_synthetic.labels([50_000])

    def test_rejects_bad_accuracy(self):
        with pytest.raises(ValidationError):
            SyntheticKG(100, 10, accuracy=1.5)

    def test_labels_are_not_correlated_with_index_parity(self, small_synthetic):
        # Hash-based labels should not leak structural patterns.
        idx = np.arange(20_000)
        labels = small_synthetic.labels(idx).astype(float)
        even = labels[idx % 2 == 0].mean()
        odd = labels[idx % 2 == 1].mean()
        assert abs(even - odd) < 0.02
