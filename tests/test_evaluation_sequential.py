"""Unit tests for the sequential-coverage analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation.framework import EvaluationConfig
from repro.evaluation.sequential import sequential_coverage
from repro.exceptions import ValidationError
from repro.intervals.ahpd import AdaptiveHPD
from repro.intervals.wald import WaldInterval
from repro.intervals.wilson import WilsonInterval


class TestSequentialCoverage:
    def test_basic_fields(self):
        result = sequential_coverage(WilsonInterval(), mu=0.85, repetitions=60, seed=0)
        assert result.method == "Wilson"
        assert 0.0 <= result.coverage <= 1.0
        assert result.mean_stopping_n >= 30
        assert result.repetitions == 60
        assert result.nominal == pytest.approx(0.95)

    def test_deterministic(self):
        a = sequential_coverage(WilsonInterval(), mu=0.85, repetitions=40, seed=3)
        b = sequential_coverage(WilsonInterval(), mu=0.85, repetitions=40, seed=3)
        assert a.coverage == b.coverage
        assert a.mean_stopping_n == b.mean_stopping_n

    def test_wald_boundary_collapse_survives_stopping(self):
        # The Example 1 pathology is even starker sequentially: Wald
        # stops on unanimous minimum samples with a zero-width miss.
        wald = sequential_coverage(WaldInterval(), mu=0.99, repetitions=150, seed=0)
        wilson = sequential_coverage(WilsonInterval(), mu=0.99, repetitions=150, seed=0)
        assert wald.coverage < wilson.coverage
        assert wald.shortfall > 0.10

    def test_ahpd_reasonable_sequential_coverage(self):
        result = sequential_coverage(AdaptiveHPD(), mu=0.85, repetitions=150, seed=0)
        assert result.coverage > 0.80

    def test_stopping_time_scales_with_difficulty(self):
        easy = sequential_coverage(AdaptiveHPD(), mu=0.95, repetitions=40, seed=0)
        hard = sequential_coverage(AdaptiveHPD(), mu=0.55, repetitions=40, seed=0)
        assert hard.mean_stopping_n > easy.mean_stopping_n

    def test_tighter_epsilon_stops_later(self):
        loose = sequential_coverage(
            WilsonInterval(),
            mu=0.85,
            config=EvaluationConfig(epsilon=0.05),
            repetitions=40,
            seed=0,
        )
        tight = sequential_coverage(
            WilsonInterval(),
            mu=0.85,
            config=EvaluationConfig(epsilon=0.03),
            repetitions=40,
            seed=0,
        )
        assert tight.mean_stopping_n > loose.mean_stopping_n

    def test_rejects_bad_mu(self):
        with pytest.raises(ValidationError):
            sequential_coverage(WilsonInterval(), mu=1.5, repetitions=10)


class TestRepRange:
    def test_windows_merge_to_full(self):
        from repro.evaluation.sequential import (
            sequential_from_replays,
            sequential_replays,
        )

        method = WilsonInterval()
        config = EvaluationConfig()
        full = sequential_coverage(method, mu=0.9, config=config, repetitions=6, seed=4)
        parts = [
            sequential_replays(
                method, 0.9, config=config, repetitions=6, seed=4, rep_range=window
            )
            for window in ((0, 2), (2, 5), (5, 6))
        ]
        hits = sum(h for h, _ in parts)
        stopping = np.concatenate([s for _, s in parts])
        merged = sequential_from_replays(method.name, 0.9, config, hits, stopping)
        assert merged == full

    def test_window_result_matches_slice(self):
        method = WilsonInterval()
        config = EvaluationConfig()
        window = sequential_coverage(
            method, mu=0.9, config=config, repetitions=6, seed=4, rep_range=(1, 4)
        )
        assert window.repetitions == 3

    def test_invalid_window_rejected(self):
        with pytest.raises(ValidationError):
            sequential_coverage(
                WilsonInterval(), mu=0.9, repetitions=5, rep_range=(4, 2)
            )
